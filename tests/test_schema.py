"""Unit tests for Schema/Field."""

import pytest

from repro.errors import SchemaError
from repro.storage.schema import Field, Schema
from repro.types import DataType


class TestField:
    def test_str(self):
        assert str(Field("x", DataType.INT64, nullable=False)) == "x INT64 NOT NULL"
        assert str(Field("y", DataType.STRING)) == "y STRING"

    def test_empty_name_raises(self):
        with pytest.raises(SchemaError):
            Field("", DataType.INT64)

    def test_bad_dtype_raises(self):
        with pytest.raises(SchemaError):
            Field("x", "int64")  # type: ignore[arg-type]


class TestSchema:
    def test_lookup(self):
        schema = Schema([Field("a", DataType.INT64), Field("b", DataType.STRING)])
        assert schema.field("b").dtype == DataType.STRING
        assert schema.index_of("a") == 0
        assert "a" in schema
        assert "z" not in schema
        assert schema.names == ("a", "b")
        assert len(schema) == 2

    def test_duplicate_names_raise(self):
        with pytest.raises(SchemaError):
            Schema([Field("a", DataType.INT64), Field("a", DataType.INT64)])

    def test_unknown_column_raises(self):
        schema = Schema([Field("a", DataType.INT64)])
        with pytest.raises(SchemaError):
            schema.field("nope")
        with pytest.raises(SchemaError):
            schema.index_of("nope")

    def test_select(self):
        schema = Schema(
            [
                Field("a", DataType.INT64),
                Field("b", DataType.STRING),
                Field("c", DataType.BOOL),
            ]
        )
        projected = schema.select(["c", "a"])
        assert projected.names == ("c", "a")

    def test_rename(self):
        schema = Schema([Field("a", DataType.INT64), Field("b", DataType.BOOL)])
        renamed = schema.rename({"a": "x"})
        assert renamed.names == ("x", "b")
        assert renamed.field("x").dtype == DataType.INT64

    def test_equality_and_hash(self):
        first = Schema([Field("a", DataType.INT64)])
        second = Schema([Field("a", DataType.INT64)])
        assert first == second
        assert hash(first) == hash(second)
        assert first != Schema([Field("a", DataType.STRING)])

    def test_iteration(self):
        schema = Schema([Field("a", DataType.INT64), Field("b", DataType.BOOL)])
        assert [field.name for field in schema] == ["a", "b"]
