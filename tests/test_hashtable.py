"""Unit and property tests for the vectorized int64 hash table."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExecutionError
from repro.exec.hashtable import Int64HashTable


class TestBasics:
    def test_insert_and_lookup(self):
        table = Int64HashTable(4)
        table.insert_unique(
            np.array([10, 20, 30], dtype=np.int64),
            np.array([1, 2, 3], dtype=np.int64),
        )
        assert len(table) == 3
        assert table.lookup(np.array([20, 99, 10], dtype=np.int64)).tolist() == [
            2,
            -1,
            1,
        ]

    def test_contains(self):
        table = Int64HashTable(2)
        table.insert_unique(
            np.array([5], dtype=np.int64), np.array([0], dtype=np.int64)
        )
        assert table.contains(np.array([5, 6], dtype=np.int64)).tolist() == [
            True,
            False,
        ]

    def test_duplicates_raise(self):
        table = Int64HashTable(4)
        with pytest.raises(ExecutionError):
            table.insert_unique(
                np.array([1, 1], dtype=np.int64),
                np.array([0, 1], dtype=np.int64),
            )

    def test_duplicate_against_existing_raises(self):
        table = Int64HashTable(4)
        table.insert_unique(np.array([7], dtype=np.int64), np.array([0], dtype=np.int64))
        with pytest.raises(ExecutionError):
            table.insert_unique(
                np.array([7], dtype=np.int64), np.array([1], dtype=np.int64)
            )

    def test_first_wins(self):
        table = Int64HashTable(4)
        dropped = table.insert_first_wins(
            np.array([5, 5, 6, 5], dtype=np.int64),
            np.array([10, 20, 30, 40], dtype=np.int64),
        )
        assert dropped.tolist() == [False, True, False, True]
        assert table.lookup(np.array([5, 6], dtype=np.int64)).tolist() == [10, 30]

    def test_negative_and_zero_keys(self):
        table = Int64HashTable(4)
        table.insert_unique(
            np.array([0, -1, -(2**62)], dtype=np.int64),
            np.array([1, 2, 3], dtype=np.int64),
        )
        assert table.lookup(
            np.array([0, -1, -(2**62), 2**62], dtype=np.int64)
        ).tolist() == [1, 2, 3, -1]

    def test_growth(self):
        table = Int64HashTable(2)
        keys = np.arange(1000, dtype=np.int64)
        table.insert_unique(keys, keys * 7)
        assert len(table) == 1000
        assert (table.lookup(keys) == keys * 7).all()

    def test_empty_lookup(self):
        table = Int64HashTable(0)
        assert table.lookup(np.array([], dtype=np.int64)).tolist() == []

    def test_length_mismatch(self):
        table = Int64HashTable(2)
        with pytest.raises(ExecutionError):
            table.insert_unique(
                np.array([1], dtype=np.int64), np.array([], dtype=np.int64)
            )


class TestProperties:
    @given(
        st.lists(st.integers(-(2**60), 2**60), max_size=300, unique=True),
        st.lists(st.integers(-(2**60), 2**60), max_size=300),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_python_dict(self, keys, probes):
        table = Int64HashTable(len(keys))
        key_array = np.array(keys, dtype=np.int64)
        value_array = np.arange(len(keys), dtype=np.int64)
        table.insert_unique(key_array, value_array)
        reference = {key: position for position, key in enumerate(keys)}
        probe_array = np.array(probes, dtype=np.int64)
        got = table.lookup(probe_array)
        expected = [reference.get(probe, -1) for probe in probes]
        assert got.tolist() == expected

    @given(st.lists(st.integers(0, 50), max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_first_wins_matches_dict_setdefault(self, keys):
        table = Int64HashTable(len(keys))
        key_array = np.array(keys, dtype=np.int64)
        value_array = np.arange(len(keys), dtype=np.int64)
        table.insert_first_wins(key_array, value_array)
        reference: dict[int, int] = {}
        for position, key in enumerate(keys):
            reference.setdefault(key, position)
        if keys:
            unique_keys = np.array(sorted(set(keys)), dtype=np.int64)
            got = table.lookup(unique_keys)
            assert got.tolist() == [reference[key] for key in sorted(set(keys))]
