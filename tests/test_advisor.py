"""Unit tests for the self-management advisor."""

import numpy as np

from repro import Database
from repro.core.advisor import ConstraintAdvisor
from repro.core.constraints import ConstraintKind
from repro.storage.column import ColumnVector
from repro.storage.schema import Field, Schema
from repro.types import DataType


def make_db(n=2000, seed=3) -> Database:
    """A table with a clean NUC candidate, a clean NSC candidate and a
    hopeless column."""
    rng = np.random.default_rng(seed)
    unique = rng.permutation(n).astype(np.int64)
    unique[:10] = 0  # ten duplicates -> 0.5% exceptions
    nearly_sorted = np.arange(n, dtype=np.int64)
    nearly_sorted[rng.choice(n, 20, replace=False)] = rng.integers(0, n, 20)
    noise = rng.integers(0, 3, n).astype(np.int64)  # 3 values: hopeless
    db = Database()
    schema = Schema(
        [
            Field("u", DataType.INT64),
            Field("s", DataType.INT64),
            Field("noise", DataType.INT64),
        ]
    )
    table = db.create_table("data", schema, partition_count=2)
    table.load_columns(
        {
            "u": ColumnVector(DataType.INT64, unique),
            "s": ColumnVector(DataType.INT64, nearly_sorted),
            "noise": ColumnVector(DataType.INT64, noise),
        }
    )
    return db


class TestAnalysis:
    def test_finds_both_constraint_kinds(self):
        db = make_db()
        advisor = ConstraintAdvisor(db, nuc_threshold=0.05, nsc_threshold=0.05)
        proposals = advisor.analyze_table("data")
        found = {(p.column_name, p.kind) for p in proposals}
        assert ("u", ConstraintKind.UNIQUE) in found
        assert ("s", ConstraintKind.SORTED) in found
        assert all(p.column_name != "noise" for p in proposals)

    def test_proposals_ranked_by_speedup(self):
        db = make_db()
        advisor = ConstraintAdvisor(db, nuc_threshold=0.05, nsc_threshold=0.05)
        proposals = advisor.analyze_all()
        speedups = [p.estimated_speedup for p in proposals]
        assert speedups == sorted(speedups, reverse=True)

    def test_proposal_metadata(self):
        db = make_db()
        advisor = ConstraintAdvisor(db, nuc_threshold=0.05, nsc_threshold=0.05)
        proposals = advisor.analyze_table("data", columns=["u"])
        (proposal,) = [p for p in proposals if p.kind == ConstraintKind.UNIQUE]
        assert proposal.recommended_design == "identifier"  # 0.5% < 1/64
        assert "data.u" in proposal.describe()
        assert proposal.index_name == "pidx_data_u_nuc"

    def test_empty_table_no_proposals(self):
        db = Database()
        db.create_table("empty", Schema([Field("x", DataType.INT64)]))
        advisor = ConstraintAdvisor(db)
        assert advisor.analyze_table("empty") == []


class TestSamplingPrefilter:
    def test_sampling_prunes_hopeless_columns(self):
        db = make_db(n=5000)
        advisor = ConstraintAdvisor(
            db, nuc_threshold=0.05, nsc_threshold=0.05, sample_rows=500
        )
        proposals = advisor.analyze_table("data")
        assert all(p.column_name != "noise" for p in proposals)
        # Good candidates still pass the sample filter.
        assert {p.column_name for p in proposals} == {"u", "s"}

    def test_sampling_disabled(self):
        db = make_db()
        advisor = ConstraintAdvisor(
            db, nuc_threshold=0.05, nsc_threshold=0.05, sample_rows=None
        )
        assert {p.column_name for p in advisor.analyze_table("data")} == {"u", "s"}


class TestApply:
    def test_apply_creates_indexes_via_ddl(self):
        db = make_db()
        advisor = ConstraintAdvisor(db, nuc_threshold=0.05, nsc_threshold=0.05)
        created = advisor.run()
        # The nearly sorted column is also nearly unique (its few random
        # overwrites rarely collide), so it may earn both index kinds.
        assert {"pidx_data_u_nuc", "pidx_data_s_nsc"} <= set(created)
        assert db.catalog.find_index("data", "u", "unique") is not None
        assert db.catalog.find_index("data", "s", "sorted") is not None
        # Creation was WAL-logged like user DDL.
        kinds = [record.kind for record in db.wal.records()]
        assert kinds.count("create_index") == len(created)

    def test_apply_skips_existing(self):
        db = make_db()
        advisor = ConstraintAdvisor(db, nuc_threshold=0.05, nsc_threshold=0.05)
        advisor.run()
        assert advisor.run() == []
