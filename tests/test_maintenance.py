"""Tests for incremental PatchIndex maintenance (paper §VIII outlook).

The invariant under every mutation sequence: the maintained patch set
still satisfies the formal constraint conditions (correctness), even
though it may exceed the minimal set (conservatism is allowed and
measured).
"""

from hypothesis import given, settings, strategies as st

from repro.core.constraints import check_nsc, check_nuc
from repro.core.patch_index import PatchIndex
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType


def make_table(values, partition_count=1):
    return Table.from_pydict(
        "t",
        Schema([Field("c", DataType.INT64)]),
        {"c": values},
        partition_count=partition_count,
    )


def assert_valid(index: PatchIndex):
    """NUC validity is global; NSC validity follows the index scope
    (global, or partition-local per the paper's §VI-A2)."""
    if index.kind == "unique":
        column = index.table.read_column(index.column_name)
        rowids = index.rowids()
        assert check_nuc(column, rowids), (
            f"NUC violated: values={column.to_pylist()}, patches={rowids.tolist()}"
        )
        return
    if index.scope == "global":
        column = index.table.read_column(index.column_name)
        rowids = index.rowids()
        assert check_nsc(
            column, rowids, ascending=index.ascending, strict=index.strict
        ), (
            f"global NSC violated: values={column.to_pylist()}, "
            f"patches={rowids.tolist()}"
        )
        return
    for partition in index.table.partitions:
        column = partition.column(index.column_name)
        local = index.partition_patches(partition.partition_id).rowids()
        assert check_nsc(
            column, local, ascending=index.ascending, strict=index.strict
        ), (
            f"NSC violated in partition {partition.partition_id}: "
            f"values={column.to_pylist()}, patches={local.tolist()}"
        )


class TestNucAppend:
    def test_fresh_value_stays_kept(self):
        table = make_table([1, 2, 3])
        index = PatchIndex.create("pi", table, "c", "unique")
        table.insert_rows([[4]])
        assert index.patch_count == 0
        assert_valid(index)

    def test_duplicate_of_kept_demotes_both(self):
        table = make_table([1, 2, 3])
        index = PatchIndex.create("pi", table, "c", "unique")
        table.insert_rows([[2]])
        # Both the old row (rowid 1) and the new row (rowid 3) are patches.
        assert index.rowids().tolist() == [1, 3]
        assert_valid(index)

    def test_duplicate_of_patch_value(self):
        table = make_table([5, 5, 1])
        index = PatchIndex.create("pi", table, "c", "unique")
        table.insert_rows([[5]])
        assert index.rowids().tolist() == [0, 1, 3]
        assert_valid(index)

    def test_null_insert_is_patch(self):
        table = make_table([1, 2])
        index = PatchIndex.create("pi", table, "c", "unique")
        table.insert_rows([[None]])
        assert index.rowids().tolist() == [2]
        assert_valid(index)

    def test_stats_track_demotions(self):
        table = make_table([1, 2, 3])
        index = PatchIndex.create("pi", table, "c", "unique")
        table.insert_rows([[2], [9]])
        assert index._maintainer is not None
        assert index._maintainer.stats.kept_rows_demoted == 1
        assert index._maintainer.stats.rows_appended == 2


class TestNscAppend:
    def test_extending_value_stays_kept(self):
        table = make_table([1, 5, 9])
        index = PatchIndex.create("pi", table, "c", "sorted")
        table.insert_rows([[9], [12]])
        assert index.patch_count == 0
        assert_valid(index)

    def test_out_of_order_value_is_patch(self):
        table = make_table([1, 5, 9])
        index = PatchIndex.create("pi", table, "c", "sorted")
        table.insert_rows([[3]])
        assert index.rowids().tolist() == [3]
        assert_valid(index)

    def test_null_is_patch(self):
        table = make_table([1, 5])
        index = PatchIndex.create("pi", table, "c", "sorted")
        table.insert_rows([[None], [7]])
        assert index.rowids().tolist() == [2]
        assert_valid(index)

    def test_tail_tracking_after_mixed_appends(self):
        table = make_table([10])
        index = PatchIndex.create("pi", table, "c", "sorted")
        table.insert_rows([[5], [11], [11], [4]])
        # 5 breaks order; 11, 11 extend; 4 breaks again.
        assert index.rowids().tolist() == [1, 4]
        assert_valid(index)


class TestDelete:
    def test_delete_remaps_nuc(self):
        table = make_table([1, 3, 3, 7])
        index = PatchIndex.create("pi", table, "c", "unique")
        table.delete_rowids([0])
        assert index.rowids().tolist() == [0, 1]
        assert_valid(index)

    def test_delete_patch_rows(self):
        table = make_table([1, 3, 3, 7])
        index = PatchIndex.create("pi", table, "c", "unique")
        table.delete_rowids([1, 2])
        # Conservative: no promotion needed, patch set simply shrinks.
        assert index.patch_count == 0
        assert_valid(index)

    def test_delete_then_insert_rebuilds_state(self):
        table = make_table([1, 2, 3, 4])
        index = PatchIndex.create("pi", table, "c", "unique")
        table.delete_rowids([1])
        table.insert_rows([[3]])  # duplicates kept value 3 (now rowid 1)
        assert_valid(index)
        assert index.patch_count == 2

    def test_delete_remaps_nsc(self):
        table = make_table([1, 9, 2, 3])
        index = PatchIndex.create("pi", table, "c", "sorted")
        assert index.rowids().tolist() == [1]
        table.delete_rowids([0])
        assert index.rowids().tolist() == [0]
        assert_valid(index)


class TestUpdate:
    def test_update_indexed_column_demotes(self):
        table = make_table([1, 2, 3])
        index = PatchIndex.create("pi", table, "c", "unique")
        table.update_rowid(0, "c", 3)  # now duplicates kept value 3
        assert set(index.rowids().tolist()) == {0, 2}
        assert_valid(index)

    def test_update_nsc_marks_patch(self):
        table = make_table([1, 5, 9])
        index = PatchIndex.create("pi", table, "c", "sorted")
        table.update_rowid(1, "c", 100)
        assert 1 in index.rowids().tolist()
        assert_valid(index)

    def test_update_other_column_ignored(self):
        table = Table.from_pydict(
            "t",
            Schema([Field("c", DataType.INT64), Field("d", DataType.INT64)]),
            {"c": [1, 2], "d": [0, 0]},
        )
        index = PatchIndex.create("pi", table, "c", "unique")
        table.update_rowid(0, "d", 99)
        assert index.patch_count == 0

    def test_update_to_null(self):
        table = make_table([1, 2, 3])
        index = PatchIndex.create("pi", table, "c", "unique")
        table.update_rowid(1, "c", None)
        assert 1 in index.rowids().tolist()
        assert_valid(index)

    def test_update_nsc_tail_then_append(self):
        table = make_table([1, 5, 9])
        index = PatchIndex.create("pi", table, "c", "sorted")
        table.update_rowid(2, "c", 0)  # the tail row becomes a patch
        table.insert_rows([[6]])  # 6 >= 5 (new tail): kept
        assert index.rowids().tolist() == [2]
        assert_valid(index)


mutations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), st.one_of(st.none(), st.integers(0, 8))),
        st.tuples(st.just("delete"), st.integers(0, 20)),
        st.tuples(
            st.just("update"),
            st.tuples(st.integers(0, 20), st.one_of(st.none(), st.integers(0, 8))),
        ),
    ),
    max_size=12,
)


class TestPropertyBased:
    @given(
        st.lists(st.one_of(st.none(), st.integers(0, 8)), min_size=1, max_size=15),
        mutations,
        st.sampled_from(["unique", "sorted"]),
        st.integers(1, 3),
        st.sampled_from(["global", "partition"]),
    )
    @settings(max_examples=120, deadline=None)
    def test_constraint_holds_under_any_mutation_sequence(
        self, initial, operations, kind, partitions, scope
    ):
        table = make_table(initial, partition_count=partitions)
        index = PatchIndex.create("pi", table, "c", kind, scope=scope)
        for operation, argument in operations:
            if operation == "insert":
                table.insert_rows([[argument]])
            elif operation == "delete":
                if table.row_count:
                    table.delete_rowids([argument % table.row_count])
            else:
                rowid, value = argument
                if table.row_count:
                    table.update_rowid(rowid % table.row_count, "c", value)
            assert_valid(index)
