"""Snapshot isolation under concurrent writers, readers, and checkpoints.

One writer thread appends fixed-size batches (each batch is a single INSERT,
hence a single WAL record) and periodically checkpoints.  Reader threads run
snapshot-pinned scans the whole time and assert that every statement observes
a state that lies exactly on a statement boundary: every batch group is either
fully visible (BATCH_ROWS rows) or not visible at all — never torn.
"""

import threading

import pytest

import repro

BATCH_ROWS = 20
BATCHES = 24
CHECKPOINT_EVERY = 7
READERS = 4


@pytest.fixture
def durable(tmp_path):
    db = repro.connect(tmp_path / "data", parallelism=1)
    db.sql("CREATE TABLE t (batch BIGINT, x BIGINT)")
    return db


def _insert_batch(db, batch: int) -> None:
    values = ", ".join(f"({batch}, {i})" for i in range(BATCH_ROWS))
    db.sql(f"INSERT INTO t VALUES {values}")


class TestSnapshotIsolationFuzz:
    def test_concurrent_readers_never_see_torn_batches(self, durable):
        done = threading.Event()
        failures: list[BaseException] = []
        reads = [0] * READERS

        def writer() -> None:
            try:
                for batch in range(BATCHES):
                    _insert_batch(durable, batch)
                    if batch % CHECKPOINT_EVERY == CHECKPOINT_EVERY - 1:
                        durable.checkpoint()
            except BaseException as error:  # noqa: BLE001 - surfaced below
                failures.append(error)
            finally:
                done.set()

        def reader(slot: int) -> None:
            try:
                with durable.session(snapshot_reads=True) as session:
                    while not done.is_set() or reads[slot] == 0:
                        result = session.sql(
                            "SELECT batch, COUNT(*) AS n FROM t GROUP BY batch"
                        )
                        for batch, n in result.rows():
                            if n != BATCH_ROWS:
                                raise AssertionError(
                                    f"torn batch {batch}: saw {n} rows"
                                )
                        reads[slot] += 1
            except BaseException as error:  # noqa: BLE001 - surfaced below
                failures.append(error)

        threads = [threading.Thread(target=writer)]
        threads += [
            threading.Thread(target=reader, args=(slot,)) for slot in range(READERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures
        assert all(count > 0 for count in reads)
        final = durable.sql("SELECT COUNT(*) AS n FROM t").scalar()
        assert final == BATCHES * BATCH_ROWS

    def test_long_lived_snapshot_is_frozen_during_churn(self, durable):
        _insert_batch(durable, 0)
        durable.checkpoint()
        with durable.snapshot() as view:
            for batch in range(1, 6):
                _insert_batch(durable, batch)
                if batch % 2 == 0:
                    durable.checkpoint()
                assert view.sql("SELECT COUNT(*) AS n FROM t").scalar() == BATCH_ROWS
                assert (
                    view.sql("SELECT MAX(batch) AS m FROM t").scalar() == 0
                )
        assert durable.sql("SELECT COUNT(*) AS n FROM t").scalar() == 6 * BATCH_ROWS

    def test_no_generations_leak_after_fuzz(self, durable, tmp_path):
        views = []
        for batch in range(4):
            _insert_batch(durable, batch)
            views.append(durable.snapshot())
            durable.checkpoint()
        for view in views:
            view.close()
        segments = tmp_path / "data" / "segments"
        generations = [p for p in segments.iterdir() if p.is_dir()]
        assert len(generations) == 1
        assert durable.obs.gauge("storage.snapshot.deferred_generations").value == 0
