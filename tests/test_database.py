"""Unit tests for the Database facade: DDL, WAL logging, recovery."""

import pytest

from repro import Database, DataType, Field, Schema
from repro.errors import ThresholdExceededError, WalError
from repro.storage.column import ColumnVector
from repro.storage.database import payload_to_schema, schema_to_payload


def two_cols() -> Schema:
    return Schema([Field("c", DataType.INT64), Field("s", DataType.STRING)])


class TestSchemaPayload:
    def test_roundtrip(self):
        schema = Schema(
            [
                Field("a", DataType.INT64, nullable=False),
                Field("b", DataType.DATE),
            ]
        )
        assert payload_to_schema(schema_to_payload(schema)) == schema

    def test_malformed(self):
        with pytest.raises(WalError):
            payload_to_schema([{"name": "x", "dtype": "decimal"}])


class TestDdl:
    def test_create_table_logs_wal(self):
        db = Database()
        db.create_table("t", two_cols(), partition_count=2)
        records = db.wal.records()
        assert records[-1].kind == "create_table"
        assert records[-1].payload["partition_count"] == 2

    def test_create_from_pydict(self):
        db = Database()
        table = db.create_table_from_pydict(
            "t", two_cols(), {"c": [1, 2], "s": ["a", "b"]}
        )
        assert table.row_count == 2
        assert db.table("t") is table

    def test_drop_table_logs(self):
        db = Database()
        db.create_table("t", two_cols())
        db.drop_table("t")
        assert db.wal.records()[-1].kind == "drop_table"

    def test_create_patch_index(self):
        db = Database()
        db.create_table_from_pydict(
            "t", two_cols(), {"c": [1, 2, 2], "s": ["a", "b", "c"]}
        )
        index = db.create_patch_index("pi", "t", "c", "unique")
        assert db.catalog.index("pi") is index
        record = db.wal.records()[-1]
        assert record.kind == "create_index"
        # The WAL stays slim: no patch payload is logged.
        assert "patches" not in record.payload
        assert "rowids" not in record.payload

    def test_threshold_propagates(self):
        db = Database()
        db.create_table_from_pydict(
            "t", two_cols(), {"c": [1, 1], "s": ["a", "b"]}
        )
        with pytest.raises(ThresholdExceededError):
            db.create_patch_index("pi", "t", "c", "unique", threshold=0.1)

    def test_drop_patch_index(self):
        db = Database()
        db.create_table_from_pydict(
            "t", two_cols(), {"c": [1], "s": ["a"]}
        )
        db.create_patch_index("pi", "t", "c", "unique")
        db.drop_patch_index("pi")
        assert not db.catalog.has_index("pi")

    def test_describe(self):
        db = Database()
        db.create_table_from_pydict("t", two_cols(), {"c": [1], "s": ["a"]})
        db.create_patch_index("pi", "t", "c", "unique")
        text = db.describe()
        assert "table t" in text
        assert "patchindex pi" in text


class TestRecovery:
    def test_recovery_rebuilds_indexes_from_data(self, tmp_path):
        wal_path = tmp_path / "wal.jsonl"
        db = Database(wal_path)
        db.create_table("t", two_cols(), partition_count=2)
        db.table("t").load_columns(
            {
                "c": ColumnVector.from_pylist(DataType.INT64, [1, 2, 2, None]),
                "s": ColumnVector.from_pylist(DataType.STRING, list("wxyz")),
            }
        )
        db.create_patch_index("pi", "t", "c", "unique", mode="bitmap")
        original = db.catalog.index("pi").rowids().tolist()

        def load(table):
            table.load_columns(
                {
                    "c": ColumnVector.from_pylist(
                        DataType.INT64, [1, 2, 2, None]
                    ),
                    "s": ColumnVector.from_pylist(DataType.STRING, list("wxyz")),
                }
            )

        recovered = Database.recover(wal_path, {"t": load})
        index = recovered.catalog.index("pi")
        assert index.rowids().tolist() == original
        assert index.design == "bitmap"
        assert recovered.table("t").row_count == 4

    def test_recovery_skips_dropped_objects(self, tmp_path):
        wal_path = tmp_path / "wal.jsonl"
        db = Database(wal_path)
        db.create_table("gone", two_cols())
        db.drop_table("gone")
        db.create_table("kept", two_cols())
        recovered = Database.recover(wal_path)
        assert recovered.catalog.table_names() == ["kept"]

    def test_recovery_index_missing_table(self, tmp_path):
        wal_path = tmp_path / "wal.jsonl"
        wal_path.write_text(
            '{"lsn": 1, "kind": "create_index", "payload": {"name": "i", '
            '"table": "t", "column": "c", "kind": "unique", "mode": "auto", '
            '"threshold": 1.0}}\n'
        )
        # The record survives live_records (no matching create_table), so
        # recovery must fail loudly rather than silently skip.
        with pytest.raises(WalError):
            Database.recover(wal_path)
