"""Tests for the TopN operator and its Limit∘Sort fusion."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.errors import PlanError
from repro.exec.operators import TableScan, TopN
from repro.exec.operators.sort import SortKey
from repro.exec.result import collect
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType


def make_table(values, partition_count=2):
    return Table.from_pydict(
        "t",
        Schema([Field("v", DataType.INT64), Field("w", DataType.STRING)]),
        {"v": values, "w": [str(i) for i in range(len(values))]},
        partition_count=partition_count,
    )


class TestTopN:
    def test_ascending(self):
        table = make_table([5, 1, 9, 3, 7])
        result = collect(TopN(TableScan(table), [SortKey("v")], 3))
        assert result.column("v").to_pylist() == [1, 3, 5]

    def test_descending(self):
        table = make_table([5, 1, 9, 3, 7])
        result = collect(
            TopN(TableScan(table), [SortKey("v", ascending=False)], 2)
        )
        assert result.column("v").to_pylist() == [9, 7]

    def test_offset(self):
        table = make_table([5, 1, 9, 3, 7])
        result = collect(TopN(TableScan(table), [SortKey("v")], 2, offset=2))
        assert result.column("v").to_pylist() == [5, 7]

    def test_limit_exceeds_rows(self):
        table = make_table([2, 1])
        result = collect(TopN(TableScan(table), [SortKey("v")], 100))
        assert result.column("v").to_pylist() == [1, 2]

    def test_limit_zero(self):
        table = make_table([1, 2])
        result = collect(TopN(TableScan(table), [SortKey("v")], 0))
        assert result.row_count == 0

    def test_nulls_last_ascending(self):
        table = make_table([3, None, 1, None, 2])
        result = collect(TopN(TableScan(table), [SortKey("v")], 4))
        assert result.column("v").to_pylist() == [1, 2, 3, None]

    def test_nulls_first_descending(self):
        table = make_table([3, None, 1])
        result = collect(
            TopN(TableScan(table), [SortKey("v", ascending=False)], 2)
        )
        assert result.column("v").to_pylist() == [None, 3]

    def test_string_key_fallback(self):
        table = make_table([1, 2, 3])
        result = collect(TopN(TableScan(table), [SortKey("w", False)], 2))
        assert result.column("w").to_pylist() == ["2", "1"]

    def test_multi_key_fallback(self):
        table = make_table([1, 1, 2])
        result = collect(
            TopN(TableScan(table), [SortKey("v"), SortKey("w", False)], 2)
        )
        assert result.to_pylist() == [(1, "1"), (1, "0")]

    def test_validation(self):
        table = make_table([1])
        with pytest.raises(PlanError):
            TopN(TableScan(table), [], 1)
        with pytest.raises(PlanError):
            TopN(TableScan(table), [SortKey("v")], -1)

    @given(
        st.lists(st.one_of(st.none(), st.integers(-50, 50)), max_size=60),
        st.integers(0, 20),
        st.integers(0, 10),
        st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_sorted_slice(self, values, limit, offset, ascending):
        table = make_table(values, partition_count=1)
        result = collect(
            TopN(TableScan(table), [SortKey("v", ascending)], limit, offset)
        )
        non_null = sorted(
            (v for v in values if v is not None), reverse=not ascending
        )
        nulls = [None] * values.count(None)
        reference = (
            non_null + nulls if ascending else nulls + non_null
        )[offset : offset + limit]
        assert result.column("v").to_pylist() == reference


class TestFusion:
    def test_planner_fuses_limit_over_sort(self):
        db = Database()
        db.sql("CREATE TABLE t (v BIGINT)")
        db.sql("INSERT INTO t VALUES (3), (1), (2)")
        plan = db.explain("SELECT v FROM t ORDER BY v LIMIT 2")
        assert "TopN" in plan
        result = db.sql("SELECT v FROM t ORDER BY v LIMIT 2")
        assert result.column("v").to_pylist() == [1, 2]

    def test_fusion_respects_patch_rewrite(self):
        # When the sort rewrite fires, the MergeUnion sits between Limit
        # and Sort: no fusion, but results still correct.
        db = Database()
        db.sql("CREATE TABLE t (v BIGINT)")
        rows = ", ".join(f"({i})" for i in range(300))
        db.sql(f"INSERT INTO t VALUES {rows}")
        db.sql("INSERT INTO t VALUES (5)")
        db.sql("CREATE PATCHINDEX pi ON t(v) TYPE SORTED")
        plan = db.explain("SELECT v FROM t ORDER BY v LIMIT 3")
        assert "MergeUnion" in plan
        result = db.sql("SELECT v FROM t ORDER BY v LIMIT 3")
        assert result.column("v").to_pylist() == [0, 1, 2]
