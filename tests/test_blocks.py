"""Unit tests for per-block min/max sketches and block pruning."""

import pytest

from repro.storage.blocks import BlockStats, compute_block_stats, prune_blocks
from repro.storage.column import ColumnVector
from repro.types import DataType


class TestComputeBlockStats:
    def test_basic(self):
        vector = ColumnVector.from_pylist(DataType.INT64, list(range(10)))
        stats = compute_block_stats(vector, block_size=4)
        assert [(s.start, s.stop) for s in stats] == [(0, 4), (4, 8), (8, 10)]
        assert stats[0].minimum == 0 and stats[0].maximum == 3
        assert stats[2].minimum == 8 and stats[2].maximum == 9

    def test_nulls_counted_and_skipped(self):
        vector = ColumnVector.from_pylist(DataType.INT64, [5, None, 7, None])
        stats = compute_block_stats(vector, block_size=4)
        assert stats[0].null_count == 2
        assert stats[0].minimum == 5
        assert stats[0].maximum == 7

    def test_all_null_block(self):
        vector = ColumnVector.from_pylist(DataType.INT64, [None, None])
        stats = compute_block_stats(vector, block_size=2)
        assert stats[0].minimum is None
        assert stats[0].maximum is None

    def test_string_blocks(self):
        vector = ColumnVector.from_pylist(DataType.STRING, ["b", "a", "d"])
        stats = compute_block_stats(vector, block_size=8)
        assert stats[0].minimum == "a"
        assert stats[0].maximum == "d"


class TestMayContain:
    @pytest.fixture
    def block(self) -> BlockStats:
        return BlockStats(0, 10, 10, 20, 0)

    def test_equality(self, block):
        assert block.may_contain("=", 15)
        assert not block.may_contain("=", 9)
        assert not block.may_contain("=", 21)

    def test_ranges(self, block):
        assert block.may_contain(">", 19)
        assert not block.may_contain(">", 20)
        assert block.may_contain(">=", 20)
        assert block.may_contain("<", 11)
        assert not block.may_contain("<", 10)
        assert block.may_contain("<=", 10)

    def test_not_equal(self):
        constant = BlockStats(0, 4, 7, 7, 0)
        assert not constant.may_contain("!=", 7)
        assert constant.may_contain("!=", 8)

    def test_all_null_prunable(self):
        block = BlockStats(0, 4, None, None, 4)
        assert not block.may_contain("=", 1)

    def test_unknown_op_conservative(self, block):
        assert block.may_contain("like", 0)


class TestPruneBlocks:
    def test_coalesces_adjacent(self):
        stats = [
            BlockStats(0, 4, 0, 3, 0),
            BlockStats(4, 8, 4, 7, 0),
            BlockStats(8, 12, 100, 110, 0),
        ]
        assert prune_blocks(stats, "<", 8) == [(0, 8)]

    def test_disjoint_ranges(self):
        stats = [
            BlockStats(0, 4, 0, 3, 0),
            BlockStats(4, 8, 50, 60, 0),
            BlockStats(8, 12, 1, 2, 0),
        ]
        assert prune_blocks(stats, "<=", 3) == [(0, 4), (8, 12)]

    def test_nothing_survives(self):
        stats = [BlockStats(0, 4, 0, 3, 0)]
        assert prune_blocks(stats, ">", 99) == []
