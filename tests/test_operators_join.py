"""Unit and property tests for HashJoin and MergeJoin."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ExecutionError, PlanError
from repro.exec.operators.hash_join import HashJoin, choose_build_side
from repro.exec.operators.merge_join import MergeJoin
from repro.exec.operators.scan import TableScan
from repro.exec.operators.sort import Sort, SortKey
from repro.exec.result import collect
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType


def probe_table(keys, name="p"):
    return Table.from_pydict(
        name,
        Schema([Field("pk", DataType.INT64), Field("ptag", DataType.INT64)]),
        {"pk": keys, "ptag": list(range(len(keys)))},
        partition_count=2 if len(keys) > 3 else 1,
    )


def build_table(keys, name="b"):
    return Table.from_pydict(
        name,
        Schema([Field("bk", DataType.INT64), Field("btag", DataType.INT64)]),
        {"bk": keys, "btag": list(range(len(keys)))},
    )


def reference_join(probe_keys, build_keys, left_outer=False):
    build_map: dict = {}
    for position, key in enumerate(build_keys):
        if key is not None:
            build_map.setdefault(key, []).append(position)
    out = []
    for position, key in enumerate(probe_keys):
        matches = build_map.get(key, []) if key is not None else []
        if matches:
            for match in matches:
                out.append((key, position, build_keys[match], match))
        elif left_outer:
            out.append((key, position, None, None))
    return out


class TestHashJoinInner:
    def test_unique_build(self):
        probe = probe_table([1, 2, None, 2, 9])
        build = build_table([1, 2, 3])
        result = collect(HashJoin(TableScan(probe), TableScan(build), "pk", "bk"))
        rows = sorted(
            zip(result.column("pk").to_pylist(), result.column("btag").to_pylist())
        )
        assert rows == [(1, 0), (2, 1), (2, 1)]

    def test_duplicate_build_falls_back(self):
        probe = probe_table([5, 6])
        build = build_table([5, 5, 6])
        result = collect(HashJoin(TableScan(probe), TableScan(build), "pk", "bk"))
        assert result.row_count == 3

    def test_string_keys(self):
        schema = Schema([Field("k", DataType.STRING)])
        probe = Table.from_pydict("p", schema, {"k": ["a", "b", "a"]})
        build = Table.from_pydict(
            "b",
            Schema([Field("bk", DataType.STRING), Field("tag", DataType.INT64)]),
            {"bk": ["a", "c"], "tag": [10, 11]},
        )
        result = collect(HashJoin(TableScan(probe), TableScan(build), "k", "bk"))
        assert result.column("tag").to_pylist() == [10, 10]

    def test_column_collision_rejected(self):
        left = probe_table([1])
        right = probe_table([1], name="p2")
        with pytest.raises(PlanError):
            HashJoin(TableScan(left), TableScan(right), "pk", "pk")

    def test_empty_build(self):
        probe = probe_table([1, 2])
        build = build_table([])
        result = collect(HashJoin(TableScan(probe), TableScan(build), "pk", "bk"))
        assert result.row_count == 0

    def test_bad_join_type(self):
        with pytest.raises(PlanError):
            HashJoin(
                TableScan(probe_table([1])),
                TableScan(build_table([1])),
                "pk",
                "bk",
                join_type="full",
            )


class TestHashJoinLeftOuter:
    def test_unmatched_rows_padded_with_null(self):
        probe = probe_table([1, 4, 2])
        build = build_table([1, 2])
        result = collect(
            HashJoin(
                TableScan(probe), TableScan(build), "pk", "bk", "left_outer"
            )
        )
        rows = sorted(
            zip(result.column("pk").to_pylist(), result.column("bk").to_pylist()),
            key=str,
        )
        assert rows == [(1, 1), (2, 2), (4, None)]

    def test_null_probe_key_kept(self):
        probe = probe_table([None, 1])
        build = build_table([1])
        result = collect(
            HashJoin(
                TableScan(probe), TableScan(build), "pk", "bk", "left_outer"
            )
        )
        assert result.row_count == 2

    def test_empty_build_all_padded(self):
        probe = probe_table([1, 2])
        build = build_table([])
        result = collect(
            HashJoin(
                TableScan(probe), TableScan(build), "pk", "bk", "left_outer"
            )
        )
        assert result.column("bk").to_pylist() == [None, None]

    def test_output_schema_nullable(self):
        probe = probe_table([1])
        build = build_table([1])
        join = HashJoin(
            TableScan(probe), TableScan(build), "pk", "bk", "left_outer"
        )
        assert join.schema.field("bk").nullable


class TestMergeJoin:
    def test_sorted_inputs(self):
        probe = probe_table([1, 2, 2, 5])
        build = build_table([1, 2, 4, 5])
        result = collect(
            MergeJoin(
                TableScan(probe), TableScan(build), "pk", "bk", check_sorted=True
            )
        )
        assert result.column("pk").to_pylist() == [1, 2, 2, 5]

    def test_duplicates_both_sides(self):
        probe = probe_table([2, 2])
        build = build_table([2, 2, 2])
        result = collect(MergeJoin(TableScan(probe), TableScan(build), "pk", "bk"))
        assert result.row_count == 6

    def test_unsorted_right_detected(self):
        probe = probe_table([1])
        build = build_table([5, 1])
        with pytest.raises(ExecutionError):
            collect(
                MergeJoin(
                    TableScan(probe), TableScan(build), "pk", "bk", check_sorted=True
                )
            )

    def test_unsorted_left_detected(self):
        probe = probe_table([5, 1])
        build = build_table([1, 5])
        with pytest.raises(ExecutionError):
            collect(
                MergeJoin(
                    TableScan(probe), TableScan(build), "pk", "bk", check_sorted=True
                )
            )

    def test_null_keys_never_match(self):
        probe = probe_table([1, None, 2])
        build = build_table([None, 1, 2])
        # Right side drops its NULL; left NULLs produce no match.
        result = collect(MergeJoin(TableScan(probe), TableScan(build), "pk", "bk"))
        assert sorted(result.column("pk").to_pylist()) == [1, 2]

    def test_preserves_left_order(self):
        probe = probe_table([1, 3, 7, 9])
        build = build_table([1, 3, 7, 9])
        result = collect(MergeJoin(TableScan(probe), TableScan(build), "pk", "bk"))
        assert result.column("pk").to_pylist() == [1, 3, 7, 9]


class TestJoinEquivalenceProperties:
    keys = st.lists(st.one_of(st.none(), st.integers(0, 15)), max_size=40)

    @given(keys, keys)
    @settings(max_examples=80, deadline=None)
    def test_hash_join_matches_reference(self, probe_keys, build_keys):
        probe = probe_table(probe_keys)
        build = build_table(build_keys)
        result = collect(
            HashJoin(TableScan(probe, batch_size=7), TableScan(build), "pk", "bk")
        )
        got = sorted(
            zip(result.column("ptag").to_pylist(), result.column("btag").to_pylist())
        )
        expected = sorted(
            (p, b) for __, p, __, b in reference_join(probe_keys, build_keys)
        )
        assert got == expected

    @given(keys, keys)
    @settings(max_examples=80, deadline=None)
    def test_merge_join_matches_hash_join(self, probe_keys, build_keys):
        probe = probe_table(probe_keys)
        build = build_table(build_keys)
        merge = collect(
            MergeJoin(
                Sort(TableScan(probe), [SortKey("pk")]),
                Sort(TableScan(build), [SortKey("bk")]),
                "pk",
                "bk",
            )
        )
        hash_result = collect(
            HashJoin(TableScan(probe), TableScan(build), "pk", "bk")
        )
        got = sorted(
            zip(merge.column("ptag").to_pylist(), merge.column("btag").to_pylist())
        )
        expected = sorted(
            zip(
                hash_result.column("ptag").to_pylist(),
                hash_result.column("btag").to_pylist(),
            )
        )
        assert got == expected

    @given(keys, keys)
    @settings(max_examples=60, deadline=None)
    def test_left_outer_matches_reference(self, probe_keys, build_keys):
        probe = probe_table(probe_keys)
        build = build_table(build_keys)
        result = collect(
            HashJoin(
                TableScan(probe, batch_size=5),
                TableScan(build),
                "pk",
                "bk",
                "left_outer",
            )
        )
        got = sorted(
            zip(result.column("ptag").to_pylist(), result.column("btag").to_pylist()),
            key=str,
        )
        expected = sorted(
            (
                (p, b)
                for __, p, __, b in reference_join(
                    probe_keys, build_keys, left_outer=True
                )
            ),
            key=str,
        )
        assert got == expected


class TestChooseBuildSide:
    def test_smaller_side_wins(self):
        assert choose_build_side(10, 100)[0] == "left"
        assert choose_build_side(100, 10)[0] == "right"
        assert choose_build_side(5, 5)[0] == "left"
