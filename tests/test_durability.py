"""Durability tests: save/reopen round-trips and crash-recovery fuzz.

The acceptance bar mirrors paper §V: closing and reopening a persisted
database must yield identical query results, with every PatchIndex
rebuilt *from data* (the WAL never carries patches), and a WAL tail torn
at an arbitrary byte must recover to exactly the state of the last
complete record.
"""

import json
import shutil
import tempfile
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro
from repro.gen import sorted_with_exceptions, unique_with_exceptions
from repro.storage.schema import Field, Schema
from repro.storage.wal import DATA_KINDS, WalRecord
from repro.types import DataType

SCHEMA = Schema([Field("k", DataType.INT64), Field("v", DataType.INT64)])


def structural_stats(index):
    """Index stats that must survive a close/reopen byte-identically
    (creation time and provenance legitimately differ)."""
    stats = index.stats()
    return (
        stats.name,
        stats.table_name,
        stats.column_name,
        stats.kind,
        stats.design,
        stats.row_count,
        stats.patch_count,
        stats.exception_rate,
        stats.memory_bytes,
        stats.partition_patch_counts,
    )


maybe_int = st.one_of(st.none(), st.integers(-50, 50))


class TestRoundtripProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        initial=st.lists(
            st.tuples(maybe_int, maybe_int), min_size=1, max_size=40
        ),
        appended=st.lists(st.tuples(maybe_int, maybe_int), max_size=12),
        checkpoint_between=st.booleans(),
        delete_stride=st.integers(0, 3),
    )
    def test_reopen_preserves_queries_and_index_stats(
        self, initial, appended, checkpoint_between, delete_stride
    ):
        root = tempfile.mkdtemp(prefix="repro-durability-")
        try:
            db = repro.connect(path=root, parallelism=1)
            table = db.create_table("t", SCHEMA, partition_count=2)
            table.insert_rows([list(row) for row in initial])
            db.create_patch_index("pi_k", "t", "k", kind="unique")
            if checkpoint_between:
                db.checkpoint()
            if appended:
                table.insert_rows([list(row) for row in appended])
            if delete_stride:
                doomed = list(range(0, table.row_count, delete_stride + 1))
                if doomed:
                    table.delete_rowids(doomed)
            query = "SELECT k, v FROM t"
            before_rows = db.sql(query).rows()
            before_distinct = db.sql(
                "SELECT COUNT(DISTINCT k) AS n FROM t"
            ).rows()
            db.close()

            reopened = repro.connect(path=root, parallelism=1)
            assert reopened.sql(query).rows() == before_rows
            assert (
                reopened.sql("SELECT COUNT(DISTINCT k) AS n FROM t").rows()
                == before_distinct
            )
            index = reopened.catalog.index("pi_k")
            assert index.provenance == "recovery"
            assert index.stats().row_count == len(before_rows)
            reopened.close()
        finally:
            shutil.rmtree(root, ignore_errors=True)

    @settings(max_examples=10, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(maybe_int, maybe_int), min_size=1, max_size=30
        )
    )
    def test_double_reopen_is_idempotent(self, rows):
        root = tempfile.mkdtemp(prefix="repro-durability-")
        try:
            db = repro.connect(path=root, parallelism=1)
            table = db.create_table("t", SCHEMA)
            table.insert_rows([list(row) for row in rows])
            db.create_patch_index("pi_k", "t", "k", kind="unique")
            db.close()
            first = repro.connect(path=root, parallelism=1)
            rows_1 = first.sql("SELECT k, v FROM t").rows()
            stats_1 = structural_stats(first.catalog.index("pi_k"))
            first.close()
            second = repro.connect(path=root, parallelism=1)
            assert second.sql("SELECT k, v FROM t").rows() == rows_1
            assert structural_stats(second.catalog.index("pi_k")) == stats_1
            second.close()
        finally:
            shutil.rmtree(root, ignore_errors=True)


class TestFig45Workloads:
    """Close → reopen over the paper's synthetic workloads (Fig. 4/5)."""

    N = 4000

    def build(self, root):
        db = repro.connect(path=root, parallelism=1)
        schema = Schema(
            [Field("u", DataType.INT64), Field("s", DataType.INT64)]
        )
        table = db.create_table("fig", schema, partition_count=4)
        table.load_columns(
            {
                "u": unique_with_exceptions(self.N, 0.02, seed=7),
                "s": sorted_with_exceptions(self.N, 0.02, seed=7),
            }
        )
        db.create_patch_index(
            "pi_u", "fig", "u", kind="unique", threshold=0.1
        )
        db.create_patch_index(
            "pi_s", "fig", "s", kind="sorted", threshold=0.1, scope="global"
        )
        return db

    QUERIES = (
        "SELECT COUNT(DISTINCT u) AS n FROM fig",
        "SELECT DISTINCT u FROM fig WHERE u < 500",
        "SELECT s FROM fig WHERE s BETWEEN 100 AND 200 ORDER BY s",
        "SELECT MIN(s) AS lo, MAX(s) AS hi, COUNT(*) AS n FROM fig",
    )

    def test_reopen_yields_identical_results(self, tmp_path):
        root = tmp_path / "db"
        db = self.build(root)
        expected = [db.sql(query).rows() for query in self.QUERIES]
        expected_stats = {
            name: structural_stats(db.catalog.index(name))
            for name in ("pi_u", "pi_s")
        }
        db.close()

        reopened = repro.connect(path=root, parallelism=1)
        for query, rows in zip(self.QUERIES, expected):
            assert reopened.sql(query).rows() == rows
        for name, stats in expected_stats.items():
            index = reopened.catalog.index(name)
            assert structural_stats(index) == stats
            assert index.provenance == "recovery"
        metrics = reopened.metrics().export()
        assert metrics["histograms"]["recovery.seconds"]["count"] == 1
        reopened.close()

    def test_reopen_after_checkpoint_and_tail(self, tmp_path):
        root = tmp_path / "db"
        db = self.build(root)
        db.checkpoint()
        db.table("fig").insert_rows([[self.N + 1, self.N + 1], [None, 5]])
        db.table("fig").delete_rowids([0, 1, 2])
        expected = [db.sql(query).rows() for query in self.QUERIES]
        metrics = db.metrics().export()
        assert metrics["histograms"]["checkpoint.seconds"]["count"] == 1
        db.close()

        reopened = repro.connect(path=root, parallelism=1)
        for query, rows in zip(self.QUERIES, expected):
            assert reopened.sql(query).rows() == rows
        reopened.close()

    def test_wal_never_contains_patches(self, tmp_path):
        """Paper §V: CREATE PATCHINDEX is logged without the patches."""
        root = tmp_path / "db"
        db = self.build(root)
        db.close()
        for line in (root / "wal.jsonl").read_text().splitlines():
            record = WalRecord.from_json(line)
            if record.kind == "create_index":
                assert set(record.payload) <= {
                    "name",
                    "table",
                    "column",
                    "kind",
                    "mode",
                    "threshold",
                    "scope",
                    "ascending",
                    "strict",
                }

    def test_mmap_reopen_matches(self, tmp_path):
        root = tmp_path / "db"
        db = self.build(root)
        db.checkpoint()
        expected = [db.sql(query).rows() for query in self.QUERIES]
        db.close()
        mapped = repro.connect(path=root, parallelism=1, mmap=True)
        for query, rows in zip(self.QUERIES, expected):
            assert mapped.sql(query).rows() == rows
        mapped.close()


def build_fuzz_base(base: Path) -> None:
    """A durable database with a checkpoint and a mutation-heavy tail."""
    db = repro.connect(path=base, parallelism=1)
    table = db.create_table("t", SCHEMA, partition_count=2)
    table.insert_rows([[i, i * 2] for i in range(40)])
    db.create_patch_index("pi_k", "t", "k", kind="unique")
    db.checkpoint()
    for batch in range(6):
        table.insert_rows(
            [[100 + batch * 3 + j, batch] for j in range(3)]
        )
    table.delete_rowids([1, 5, 9])
    table.update_rowid(0, "v", -7)
    table.insert_rows([[None, None], [7, 7]])
    db.close()


def expected_rows_after(base: Path, wal_bytes: bytes) -> int:
    """Row count implied by the manifest plus the complete WAL records."""
    manifest = json.loads((base / "manifest.json").read_text())
    checkpoint_lsn = manifest["checkpoint_lsn"]
    rows = sum(
        partition["row_count"]
        for table in manifest["tables"].values()
        for partition in table["partitions"]
    )
    for line in wal_bytes.decode("utf-8", "replace").splitlines():
        try:
            record = WalRecord.from_json(line)
        except Exception:
            break  # torn tail: everything after is discarded
        if record.kind not in DATA_KINDS or record.lsn <= checkpoint_lsn:
            continue
        if record.kind == "append":
            rows += record.payload["row_count"]
        elif record.kind == "load":
            rows += len(next(iter(record.payload["columns"].values())))
        elif record.kind == "delete":
            rows -= len(record.payload["rowids"])
    return rows


def tail_start(wal_bytes: bytes) -> int:
    """Byte offset just past the checkpoint marker.  Everything before
    it is made durable by fsync-on-append plus the atomic compaction
    rewrite, so a crash can only tear bytes at or after this offset."""
    offset = 0
    for line in wal_bytes.splitlines(keepends=True):
        record = WalRecord.from_json(line.decode("utf-8"))
        offset += len(line)
        if record.kind == "checkpoint":
            return offset
    return offset


class TestCrashRecoveryFuzz:
    @pytest.fixture(scope="class")
    def base_dir(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("fuzz") / "base"
        build_fuzz_base(base)
        return base

    @pytest.mark.parametrize("fraction", [0.0, 0.17, 0.33, 0.5, 0.66, 0.84, 0.97, 1.0])
    def test_truncated_tail_converges(self, base_dir, tmp_path, fraction):
        wal_bytes = (base_dir / "wal.jsonl").read_bytes()
        start = tail_start(wal_bytes)
        cut = start + int((len(wal_bytes) - start) * fraction)
        crashed = tmp_path / "crashed"
        shutil.copytree(base_dir, crashed)
        (crashed / "wal.jsonl").write_bytes(wal_bytes[:cut])

        db = repro.connect(path=crashed, parallelism=1)
        assert db.table("t").row_count == expected_rows_after(
            crashed, wal_bytes[:cut]
        )
        rows = db.sql("SELECT k, v FROM t").rows()
        index_stats = structural_stats(db.catalog.index("pi_k"))
        db.close()

        # Convergence: recovering the recovered directory again is a
        # fixed point — same rows, same rebuilt index.
        again = repro.connect(path=crashed, parallelism=1)
        assert again.sql("SELECT k, v FROM t").rows() == rows
        assert structural_stats(again.catalog.index("pi_k")) == index_stats
        again.close()

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_random_byte_truncation(self, base_dir, data):
        wal_bytes = (base_dir / "wal.jsonl").read_bytes()
        cut = data.draw(st.integers(tail_start(wal_bytes), len(wal_bytes)))
        crashed = Path(tempfile.mkdtemp(prefix="repro-crash-")) / "db"
        try:
            shutil.copytree(base_dir, crashed)
            (crashed / "wal.jsonl").write_bytes(wal_bytes[:cut])
            db = repro.connect(path=crashed, parallelism=1)
            assert db.table("t").row_count == expected_rows_after(
                crashed, wal_bytes[:cut]
            )
            # The recovered database is fully functional.
            db.sql("SELECT COUNT(DISTINCT k) AS n FROM t").rows()
            db.close()
        finally:
            shutil.rmtree(crashed.parent, ignore_errors=True)


def downgrade_to_v1(root: Path) -> None:
    """Rewrite a checkpointed directory as a format-version-1 database.

    Every RSEG2 segment is re-written in the legacy RSEG1 layout and the
    manifest version is set back to 1 — the exact on-disk state a
    pre-upgrade release would have left behind.
    """
    from repro.storage.segment import read_segment, write_segment_v1

    manifest_path = root / "manifest.json"
    raw = json.loads(manifest_path.read_text(encoding="utf-8"))
    for table_entry in raw["tables"].values():
        for partition in table_entry["partitions"]:
            for relative in partition["segments"].values():
                segment_path = root / Path(relative)
                column, __ = read_segment(segment_path)
                write_segment_v1(
                    segment_path,
                    column,
                    int(table_entry["block_size"]),
                    sync=False,
                )
    raw["format_version"] = 1
    manifest_path.write_text(json.dumps(raw, indent=2), encoding="utf-8")


class TestMixedVersion:
    """RSEG1 directories written by the previous release stay readable."""

    N = 2000

    QUERIES = (
        "SELECT COUNT(DISTINCT u) AS n FROM fig",
        "SELECT s FROM fig WHERE s BETWEEN 100 AND 200 ORDER BY s",
        "SELECT MIN(s) AS lo, MAX(s) AS hi, COUNT(*) AS n FROM fig",
    )

    def build_v1(self, root):
        """A checkpointed database downgraded to the legacy format."""
        db = repro.connect(path=root, parallelism=1)
        schema = Schema(
            [Field("u", DataType.INT64), Field("s", DataType.INT64)]
        )
        table = db.create_table("fig", schema, partition_count=3)
        table.load_columns(
            {
                "u": unique_with_exceptions(self.N, 0.02, seed=11),
                "s": sorted_with_exceptions(self.N, 0.02, seed=11),
            }
        )
        db.create_patch_index("pi_s", "fig", "s", kind="sorted")
        db.checkpoint()
        expected = [db.sql(query).rows() for query in self.QUERIES]
        db.close()
        downgrade_to_v1(root)
        return expected

    def test_v1_directory_readable_with_identical_results(self, tmp_path):
        root = tmp_path / "db"
        expected = self.build_v1(root)
        for segment in root.rglob("*.seg"):
            assert segment.read_bytes().startswith(b"RSEG1\n")

        db = repro.connect(path=root, parallelism=1)
        for query, rows in zip(self.QUERIES, expected):
            assert db.sql(query).rows() == rows
        db.close()

        # mmap'd attach exercises the legacy zero-copy path too.
        mapped = repro.connect(path=root, parallelism=1, mmap=True)
        for query, rows in zip(self.QUERIES, expected):
            assert mapped.sql(query).rows() == rows
        mapped.close()

    def test_post_upgrade_checkpoint_rewrites_as_v2(self, tmp_path):
        root = tmp_path / "db"
        expected = self.build_v1(root)

        db = repro.connect(path=root, parallelism=1)
        db.checkpoint()
        db.close()

        from repro.storage.manifest import FORMAT_VERSION

        manifest = json.loads((root / "manifest.json").read_text())
        assert manifest["format_version"] == FORMAT_VERSION
        for segment in root.rglob("*.seg"):
            assert segment.read_bytes().startswith(b"RSEG2\n")

        upgraded = repro.connect(path=root, parallelism=1)
        for query, rows in zip(self.QUERIES, expected):
            assert upgraded.sql(query).rows() == rows
        upgraded.close()

    def test_v1_tail_replay_then_upgrade(self, tmp_path):
        root = tmp_path / "db"
        self.build_v1(root)

        db = repro.connect(path=root, parallelism=1)
        db.table("fig").insert_rows([[self.N + 1, self.N + 1], [None, 7]])
        db.table("fig").delete_rowids([0, 3])
        expected = [db.sql(query).rows() for query in self.QUERIES]
        db.checkpoint()  # upgrade happens mid-life, tail included
        db.close()

        reopened = repro.connect(path=root, parallelism=1)
        for query, rows in zip(self.QUERIES, expected):
            assert reopened.sql(query).rows() == rows
        reopened.close()

    def test_unsupported_manifest_version_rejected(self, tmp_path):
        root = tmp_path / "db"
        db = repro.connect(path=root, parallelism=1)
        db.create_table("t", SCHEMA).insert_rows([[1, 2]])
        db.checkpoint()
        db.close()
        manifest_path = root / "manifest.json"
        raw = json.loads(manifest_path.read_text())
        raw["format_version"] = 99
        manifest_path.write_text(json.dumps(raw))
        with pytest.raises(repro.ReproError):
            repro.connect(path=root, parallelism=1)
