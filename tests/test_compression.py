"""Tests for patch-aware compression (paper §VIII outlook)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.compression import (
    compress_for,
    compress_sorted,
    compression_report,
    pack_bits,
    unpack_bits,
)
from repro.errors import StorageError
from repro.gen.synthetic import sorted_with_exceptions
from repro.storage.column import ColumnVector
from repro.types import DataType


def col(items):
    return ColumnVector.from_pylist(DataType.INT64, items)


class TestBitPacking:
    @given(
        st.lists(st.integers(0, 2**40), max_size=100),
        st.integers(41, 63),
    )
    @settings(max_examples=60)
    def test_roundtrip(self, values, width):
        array = np.array(values, dtype=np.int64)
        packed = pack_bits(array, width)
        assert unpack_bits(packed, width, len(values)).tolist() == values

    def test_minimal_width(self):
        array = np.array([0, 1, 7], dtype=np.int64)
        packed = pack_bits(array, 3)
        assert unpack_bits(packed, 3, 3).tolist() == [0, 1, 7]
        assert len(packed) == 2  # 9 bits -> 2 bytes

    def test_bad_width(self):
        with pytest.raises(StorageError):
            pack_bits(np.array([1], dtype=np.int64), 0)
        with pytest.raises(StorageError):
            pack_bits(np.array([1], dtype=np.int64), 64)


class TestCompressSorted:
    def test_roundtrip_simple(self):
        column = col([1, 3, 100, 4, 6])  # 100 is the exception
        compressed = compress_sorted(column)
        assert compressed.decompress().to_pylist() == column.to_pylist()

    def test_roundtrip_with_nulls(self):
        column = col([1, None, 3, 4])
        compressed = compress_sorted(column)
        assert compressed.decompress().to_pylist() == [1, None, 3, 4]

    def test_empty(self):
        compressed = compress_sorted(col([]))
        assert compressed.decompress().to_pylist() == []

    def test_all_patches(self):
        column = col([5, 4, 3])
        compressed = compress_sorted(column, np.array([1, 2], dtype=np.int64))
        assert compressed.decompress().to_pylist() == [5, 4, 3]

    def test_explicit_patch_set(self):
        column = col([1, 9, 2, 3])
        compressed = compress_sorted(column, np.array([1], dtype=np.int64))
        assert compressed.decompress().to_pylist() == [1, 9, 2, 3]

    def test_bad_patch_set_rejected(self):
        column = col([5, 1, 2])  # 5 must be a patch
        with pytest.raises(StorageError):
            compress_sorted(column, np.array([], dtype=np.int64))

    def test_nulls_must_be_patches(self):
        column = col([1, None, 3])
        with pytest.raises(StorageError):
            compress_sorted(column, np.array([], dtype=np.int64))

    def test_non_int_rejected(self):
        column = ColumnVector.from_pylist(DataType.FLOAT64, [1.0])
        with pytest.raises(StorageError):
            compress_sorted(column)

    @given(
        st.integers(0, 300).flatmap(
            lambda n: st.tuples(
                st.just(n),
                st.lists(
                    st.one_of(st.none(), st.integers(-1000, 1000)),
                    min_size=n,
                    max_size=n,
                ),
            )
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, case):
        __, items = case
        column = col(items)
        compressed = compress_sorted(column)
        assert compressed.decompress().to_pylist() == items

    def test_compresses_nearly_sorted_data_well(self):
        column = sorted_with_exceptions(20_000, 0.01, seed=5)
        compressed = compress_sorted(column)
        raw = 20_000 * 8
        assert compressed.size_bytes() < raw / 10

    def test_size_accounting(self):
        column = col([1, 2, 3, 4])
        compressed = compress_sorted(column)
        # base 8 + width byte + 1 byte of 1-bit deltas + no exceptions.
        assert compressed.size_bytes() == 8 + 1 + 1


class TestCompressFor:
    @given(st.lists(st.integers(-(2**30), 2**30), max_size=150))
    @settings(max_examples=80)
    def test_roundtrip(self, items):
        column = col(items)
        compressed = compress_for(column)
        assert compressed.decompress().to_pylist() == items

    def test_rejects_nulls(self):
        with pytest.raises(StorageError):
            compress_for(col([1, None]))

    def test_wider_than_patch_aware_on_dirty_data(self):
        column = sorted_with_exceptions(20_000, 0.01, seed=6)
        plain = compress_for(column)
        patched = compress_sorted(column)
        # Exceptions blow up the plain delta width; patch separation
        # keeps the main stream narrow (the §VIII hypothesis).
        assert patched.size_bytes() < plain.size_bytes()


class TestReport:
    def test_report_keys(self):
        column = sorted_with_exceptions(5000, 0.02, seed=7)
        report = compression_report(column)
        assert report["patch_aware_ratio"] > report["for_ratio"] > 1.0
