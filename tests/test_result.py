"""Tests for QueryResult and the collect() driver."""

import pytest

from repro.exec.operators.scan import TableScan
from repro.exec.result import QueryResult, collect
from repro.storage.column import ColumnVector
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType


def make_result(values):
    schema = Schema([Field("v", DataType.INT64)])
    return QueryResult(
        schema, {"v": ColumnVector.from_pylist(DataType.INT64, values)}
    )


class TestQueryResult:
    def test_basic_accessors(self):
        result = make_result([1, 2, None])
        assert result.row_count == 3
        assert len(result) == 3
        assert result.column_names == ("v",)
        assert result.column("v").to_pylist() == [1, 2, None]
        assert result.to_pydict() == {"v": [1, 2, None]}
        assert result.to_pylist() == [(1,), (2,), (None,)]
        assert list(result) == [(1,), (2,), (None,)]

    def test_scalar(self):
        assert make_result([42]).scalar() == 42

    def test_scalar_shape_checked(self):
        with pytest.raises(ValueError):
            make_result([1, 2]).scalar()
        with pytest.raises(ValueError):
            make_result([]).scalar()

    def test_empty(self):
        result = QueryResult.empty(Schema([Field("x", DataType.STRING)]))
        assert result.row_count == 0
        assert result.column_names == ("x",)

    def test_pretty_truncates(self):
        result = make_result(list(range(30)))
        text = result.pretty(limit=5)
        assert "(30 rows total)" in text
        assert text.splitlines()[0].strip() == "v"

    def test_pretty_formats_null_and_float(self):
        schema = Schema([Field("f", DataType.FLOAT64)])
        result = QueryResult(
            schema,
            {"f": ColumnVector.from_pylist(DataType.FLOAT64, [1.5, None])},
        )
        text = result.pretty()
        assert "NULL" in text
        assert "1.5" in text


class TestCollect:
    def test_collect_drains_and_closes(self):
        table = Table.from_pydict(
            "t", Schema([Field("v", DataType.INT64)]), {"v": [1, 2, 3]}
        )
        scan = TableScan(table, batch_size=2)
        result = collect(scan)
        assert result.column("v").to_pylist() == [1, 2, 3]
        # close() ran: the cursor was reset.
        assert scan._cursor is None

    def test_collect_empty(self):
        table = Table.from_pydict(
            "t", Schema([Field("v", DataType.INT64)]), {"v": []}
        )
        result = collect(TableScan(table))
        assert result.row_count == 0
