"""Block cache tests: LRU mechanics, observability, and staleness.

The cache must be boring in exactly one way: it can never change query
results.  The mutation fuzz here runs the same operation stream against
a durable cached database and an in-memory mirror and compares results
after every step — append, delete, update and checkpoint must all
invalidate (or bypass) cached blocks correctly, including in worker
processes that attach the data directory and replay the WAL tail.
"""

import io
import random
import shutil
import tempfile

import pytest

import repro
from repro.core.cost_model import CostModel
from repro.errors import StorageError
from repro.exec.parallel.procpool import shutdown_process_pool
from repro.storage.cache import (
    BlockCache,
    ENV_CACHE_BYTES,
    ScanIO,
    cache_capacity_from_env,
    vector_nbytes,
)
from repro.storage.column import ColumnVector
from repro.storage.schema import Field, Schema
from repro.types import DataType

SCHEMA = Schema([Field("k", DataType.INT64), Field("v", DataType.INT64)])


def vec(items):
    return ColumnVector.from_pylist(DataType.INT64, items)


class TestBlockCache:
    def test_hit_miss_counters(self):
        cache = BlockCache(1024)
        key = ("t", "p0.k.seg", "k", 0, 7)
        assert cache.get(key) is None
        assert cache.put(key, vec([1, 2, 3]))
        assert cache.get(key).to_pylist() == [1, 2, 3]
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_ratio"] == 0.5
        assert stats["entries"] == 1

    def test_lru_eviction_order(self):
        block = vec(list(range(8)))
        nbytes = vector_nbytes(block)
        # Four entries fit exactly (and each stays under the 1/4-capacity
        # per-entry limit); the fifth evicts the least recently used.
        cache = BlockCache(nbytes * 4)
        for index in range(4):
            cache.put(("t", "s", "k", index, 0), block)
        cache.get(("t", "s", "k", 0, 0))  # touch → most recent
        cache.put(("t", "s", "k", 4, 0), block)  # evicts block 1
        assert cache.get(("t", "s", "k", 1, 0)) is None
        assert cache.get(("t", "s", "k", 0, 0)) is not None
        assert cache.stats()["evictions"] == 1
        assert cache.bytes <= cache.capacity_bytes

    def test_oversized_entries_skipped_and_counted(self):
        cache = BlockCache(1000)  # max entry = 250 bytes
        big = vec(list(range(200)))  # 1600 bytes of values
        assert not cache.put(("t", "s", "k", 0, 0), big)
        assert cache.entry_count == 0
        assert cache.stats()["skip_count"] == 1
        small = vec([1])
        assert cache.put(("t", "s", "k", 1, 0), small)
        assert cache.entry_count == 1

    def test_clear_drops_entries_keeps_counters(self):
        cache = BlockCache(4096)
        cache.put(("t", "s", "k", 0, 0), vec([1]))
        cache.get(("t", "s", "k", 0, 0))
        cache.clear()
        assert cache.entry_count == 0
        assert cache.bytes == 0
        assert cache.stats()["hits"] == 1

    def test_generation_in_key_separates_checkpoints(self):
        cache = BlockCache(4096)
        cache.put(("t", "s", "k", 0, 1), vec([1]))
        assert cache.get(("t", "s", "k", 0, 2)) is None

    def test_string_vector_bytes_counted(self):
        column = ColumnVector.from_pylist(DataType.STRING, ["abc", "", "xy"])
        assert vector_nbytes(column) >= 8 * 3 + 5

    def test_scan_io_hit_ratio(self):
        io_stats = ScanIO(cache_hits=3, cache_misses=1)
        assert io_stats.hit_ratio == 0.75
        assert ScanIO().hit_ratio == 0.0


class TestCapacityKnobs:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_BYTES, "12345")
        assert cache_capacity_from_env() == 12345

    def test_env_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_CACHE_BYTES, "lots")
        with pytest.raises(StorageError):
            cache_capacity_from_env()

    def test_cache_bytes_zero_disables(self, tmp_path):
        db = repro.connect(path=tmp_path / "db", cache_bytes=0, parallelism=1)
        table = db.create_table("t", SCHEMA)
        table.insert_rows([[1, 2], [3, 4]])
        db.sql("CHECKPOINT")
        assert db.sql("SELECT SUM(v) AS s FROM t").rows() == [(6,)]
        assert db.cache_stats() is None
        db.close()

    def test_memory_database_has_no_cache(self):
        db = repro.connect()
        assert db.cache_stats() is None
        db.close()

    def test_cache_requires_durable_path(self):
        with pytest.raises(StorageError):
            repro.connect(cache_bytes=1024)


class TestCacheMetrics:
    def test_gauges_exported(self, tmp_path):
        db = repro.connect(path=tmp_path / "db", parallelism=1)
        table = db.create_table("t", SCHEMA)
        table.insert_rows([[i, i * 2] for i in range(100)])
        db.sql("CHECKPOINT")
        db.close()

        reopened = repro.connect(path=tmp_path / "db", parallelism=1)
        reopened.sql("SELECT SUM(v) AS s FROM t")
        reopened.sql("SELECT SUM(v) AS s FROM t")
        gauges = reopened.metrics().export()["gauges"]
        assert gauges["cache.entries"] >= 1
        assert gauges["cache.bytes"] > 0
        assert gauges["cache.hit_ratio"] > 0.0
        assert "storage.t.encoded_ratio" in gauges
        counters = reopened.metrics().export()["counters"]
        assert counters["cache.hits"] >= 1
        assert counters["cache.misses"] >= 1
        reopened.close()

    def test_profile_reports_cache_counters(self, tmp_path):
        db = repro.connect(path=tmp_path / "db", parallelism=1)
        table = db.create_table("t", SCHEMA)
        table.insert_rows([[i, i] for i in range(200)])
        db.sql("CHECKPOINT")
        db.close()

        reopened = repro.connect(path=tmp_path / "db", parallelism=1)
        cold = reopened.sql("SELECT SUM(v) AS s FROM t", profile=True)
        scan = cold.profile.find("TableScan")[0]
        assert scan.details["blocks_decoded"] >= 1
        assert scan.details["bytes_decoded"] >= scan.details["bytes_read"]
        warm = reopened.sql("SELECT SUM(v) AS s FROM t", profile=True)
        scan = warm.profile.find("TableScan")[0]
        assert scan.details["cache_hits"] >= 1
        assert scan.details["cache_hit_ratio"] == 1.0
        reopened.close()


def mirror_pair(tmp_path):
    durable = repro.connect(
        path=tmp_path / "db", parallelism=1, cache_bytes=1 << 20, sync=False
    )
    memory = repro.connect()
    for db in (durable, memory):
        table = db.create_table("t", SCHEMA, partition_count=2)
        table.insert_rows([[i % 7, i] for i in range(64)])
    return durable, memory


QUERY = "SELECT k, SUM(v) AS s, COUNT(*) AS n FROM t GROUP BY k ORDER BY k"


class TestNeverStale:
    def test_mutations_after_checkpoint_visible(self, tmp_path):
        durable, memory = mirror_pair(tmp_path)
        durable.sql("CHECKPOINT")
        durable.sql(QUERY)  # populate the cache
        for db in (durable, memory):
            db.table("t").insert_rows([[100, 1], [101, None]])
            db.table("t").delete_rowids([0, 5])
            db.table("t").update_rowid(10, "v", 9999)
        assert durable.sql(QUERY).rows() == memory.sql(QUERY).rows()
        durable.close()
        memory.close()

    def test_fuzzed_mutation_stream(self, tmp_path):
        durable, memory = mirror_pair(tmp_path)
        rng = random.Random(42)
        next_key = 1000
        for step in range(60):
            op = rng.choice(["insert", "delete", "update", "checkpoint"])
            if op == "insert":
                rows = [
                    [next_key + j, rng.randrange(100)]
                    for j in range(rng.randrange(1, 4))
                ]
                next_key += len(rows)
                for db in (durable, memory):
                    db.table("t").insert_rows(rows)
            elif op == "delete":
                count = durable.table("t").row_count
                if count:
                    rowid = rng.randrange(count)
                    for db in (durable, memory):
                        db.table("t").delete_rowids([rowid])
            elif op == "update":
                count = durable.table("t").row_count
                if count:
                    rowid = rng.randrange(count)
                    value = rng.randrange(10_000)
                    for db in (durable, memory):
                        db.table("t").update_rowid(rowid, "v", value)
            else:
                durable.sql("CHECKPOINT")
            assert durable.sql(QUERY).rows() == memory.sql(QUERY).rows(), (
                f"diverged at step {step} after {op}"
            )
        durable.close()
        memory.close()

    def test_reopen_after_mutations_matches(self, tmp_path):
        durable, memory = mirror_pair(tmp_path)
        durable.sql("CHECKPOINT")
        for db in (durable, memory):
            db.table("t").insert_rows([[500, 1]])
        expected = memory.sql(QUERY).rows()
        durable.close()
        memory.close()

        reopened = repro.connect(path=tmp_path / "db", parallelism=1)
        assert reopened.sql(QUERY).rows() == expected
        assert reopened.sql(QUERY).rows() == expected  # warm pass
        reopened.close()


#: Zeroed fan-out weights so the tiny fixture passes the process gate.
FORCE = CostModel(
    parallel_startup_weight=0,
    morsel_dispatch_weight=0,
    process_startup_weight=0,
    process_dispatch_weight=0,
)


class TestProcessWorkers:
    @pytest.fixture(autouse=True)
    def _teardown(self):
        yield
        shutdown_process_pool()

    def test_worker_replays_tail_after_checkpoint(self, tmp_path):
        from repro.exec.result import collect
        from repro.plan.optimizer import Optimizer
        from repro.plan.physical import PhysicalPlanner
        from repro.sql.binder import Binder
        from repro.sql.parser import parse_statement

        db = repro.connect(
            path=tmp_path / "db", parallelism=2, mmap=True, sync=False
        )
        table = db.create_table("t", SCHEMA, partition_count=2, block_size=8)
        table.insert_rows([[i % 7, i] for i in range(64)])
        db.sql("CHECKPOINT")
        db.sql(QUERY)  # warm the coordinator cache pre-mutation

        def run_process(text):
            statement = parse_statement(text)
            logical = Binder(db.catalog).bind_select(statement)
            optimized = Optimizer(db.catalog).optimize(logical)
            plan = PhysicalPlanner(
                parallelism=2,
                morsel_size=16,
                cost_model=FORCE,
                backend="process",
                database=db,
            ).plan(optimized)
            return collect(plan)

        # Tail mutations after the checkpoint: workers must attach the
        # segments AND replay these before serving blocks.
        table.insert_rows([[100, 1], [101, 2]])
        table.update_rowid(3, "v", 7777)
        expected = db.sql(QUERY).rows()
        assert run_process(QUERY).rows() == expected

        # Mutate again: the snapshot LSN moves, so cached worker tables
        # for the old snapshot must not leak into the new query.
        table.insert_rows([[200, 5]])
        expected = db.sql(QUERY).rows()
        assert run_process(QUERY).rows() == expected
        db.close()
