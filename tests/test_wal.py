"""Unit tests for the write-ahead log."""

import pytest

from repro.errors import WalError
from repro.storage.wal import WalRecord, WriteAheadLog


class TestInMemory:
    def test_append_and_read(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.append("create_index", {"name": "i", "table": "t"})
        records = wal.records()
        assert [record.kind for record in records] == [
            "create_table",
            "create_index",
        ]
        assert records[0].lsn == 1
        assert records[1].lsn == 2

    def test_unknown_kind_rejected(self):
        wal = WriteAheadLog()
        with pytest.raises(WalError):
            wal.append("compact", {})

    def test_checkpoint(self):
        wal = WriteAheadLog()
        record = wal.checkpoint()
        assert record.kind == "checkpoint"

    def test_truncate(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.truncate()
        assert len(wal) == 0


class TestLiveRecords:
    def test_drop_cancels_create(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.append("drop_table", {"name": "t"})
        assert wal.live_records() == []

    def test_recreate_after_drop_survives(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.append("drop_table", {"name": "t"})
        wal.append("create_table", {"name": "t"})
        live = wal.live_records()
        assert len(live) == 1
        assert live[0].lsn == 3

    def test_drop_table_cancels_its_indexes(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.append("create_index", {"name": "i", "table": "t"})
        wal.append("drop_table", {"name": "t"})
        assert wal.live_records() == []

    def test_drop_index_only(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.append("create_index", {"name": "i", "table": "t"})
        wal.append("drop_index", {"name": "i"})
        live = wal.live_records()
        assert [record.kind for record in live] == ["create_table"]

    def test_alternating_create_drop(self):
        wal = WriteAheadLog()
        for __ in range(2):
            wal.append("create_table", {"name": "t"})
            wal.append("drop_table", {"name": "t"})
        wal.append("create_table", {"name": "t"})
        assert len(wal.live_records()) == 1


class TestFileBacked:
    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync=False)
        wal.append("create_table", {"name": "t", "schema": []})
        wal.append("create_index", {"name": "i", "table": "t"})
        reloaded = WriteAheadLog(path)
        assert [record.kind for record in reloaded.records()] == [
            "create_table",
            "create_index",
        ]
        # New appends continue the LSN sequence.
        record = reloaded.append("drop_index", {"name": "i"})
        assert record.lsn == 3

    def test_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text(
            '{"lsn": 1, "kind": "create_table", "payload": {"name": "t"}}\n'
            "not json\n"
        )
        with pytest.raises(WalError):
            WriteAheadLog(path)

    def test_non_monotonic_lsn_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text(
            '{"lsn": 2, "kind": "create_table", "payload": {"name": "a"}}\n'
            '{"lsn": 1, "kind": "create_table", "payload": {"name": "b"}}\n'
        )
        with pytest.raises(WalError):
            WriteAheadLog(path)

    def test_payload_keys_cannot_collide_with_envelope(self, tmp_path):
        # An index's own "kind" (unique/sorted) must survive a
        # serialization roundtrip intact.
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync=False)
        wal.append(
            "create_index",
            {"name": "i", "table": "t", "column": "c", "kind": "unique"},
        )
        reloaded = WriteAheadLog(path)
        record = reloaded.records()[0]
        assert record.kind == "create_index"
        assert record.payload["kind"] == "unique"

    def test_truncate_removes_file(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync=False)
        wal.append("create_table", {"name": "t"})
        wal.truncate()
        assert not path.exists()


class TestWalRecord:
    def test_json_roundtrip(self):
        record = WalRecord(7, "create_index", {"name": "i", "table": "t"})
        parsed = WalRecord.from_json(record.to_json())
        assert parsed == record

    def test_malformed_json(self):
        with pytest.raises(WalError):
            WalRecord.from_json("[1, 2]")

    def test_malformed_payload(self):
        with pytest.raises(WalError):
            WalRecord.from_json('{"lsn": 1, "kind": "checkpoint", "payload": 3}')

    def test_unknown_kind(self):
        with pytest.raises(WalError):
            WalRecord.from_json('{"lsn": 1, "kind": "vacuum"}')
