"""Unit tests for the write-ahead log."""

import pytest

from repro.errors import WalError
from repro.storage.wal import WalRecord, WriteAheadLog


class TestInMemory:
    def test_append_and_read(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.append("create_index", {"name": "i", "table": "t"})
        records = wal.records()
        assert [record.kind for record in records] == [
            "create_table",
            "create_index",
        ]
        assert records[0].lsn == 1
        assert records[1].lsn == 2

    def test_unknown_kind_rejected(self):
        wal = WriteAheadLog()
        with pytest.raises(WalError):
            wal.append("compact", {})

    def test_checkpoint(self):
        wal = WriteAheadLog()
        record = wal.checkpoint()
        assert record.kind == "checkpoint"

    def test_truncate(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.truncate()
        assert len(wal) == 0


class TestLiveRecords:
    def test_drop_cancels_create(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.append("drop_table", {"name": "t"})
        assert wal.live_records() == []

    def test_recreate_after_drop_survives(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.append("drop_table", {"name": "t"})
        wal.append("create_table", {"name": "t"})
        live = wal.live_records()
        assert len(live) == 1
        assert live[0].lsn == 3

    def test_drop_table_cancels_its_indexes(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.append("create_index", {"name": "i", "table": "t"})
        wal.append("drop_table", {"name": "t"})
        assert wal.live_records() == []

    def test_drop_index_only(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.append("create_index", {"name": "i", "table": "t"})
        wal.append("drop_index", {"name": "i"})
        live = wal.live_records()
        assert [record.kind for record in live] == ["create_table"]

    def test_alternating_create_drop(self):
        wal = WriteAheadLog()
        for __ in range(2):
            wal.append("create_table", {"name": "t"})
            wal.append("drop_table", {"name": "t"})
        wal.append("create_table", {"name": "t"})
        assert len(wal.live_records()) == 1


class TestFileBacked:
    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync=False)
        wal.append("create_table", {"name": "t", "schema": []})
        wal.append("create_index", {"name": "i", "table": "t"})
        reloaded = WriteAheadLog(path)
        assert [record.kind for record in reloaded.records()] == [
            "create_table",
            "create_index",
        ]
        # New appends continue the LSN sequence.
        record = reloaded.append("drop_index", {"name": "i"})
        assert record.lsn == 3

    def test_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text(
            '{"lsn": 1, "kind": "create_table", "payload": {"name": "t"}}\n'
            "not json\n"
        )
        with pytest.raises(WalError):
            WriteAheadLog(path)

    def test_non_monotonic_lsn_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text(
            '{"lsn": 2, "kind": "create_table", "payload": {"name": "a"}}\n'
            '{"lsn": 1, "kind": "create_table", "payload": {"name": "b"}}\n'
        )
        with pytest.raises(WalError):
            WriteAheadLog(path)

    def test_payload_keys_cannot_collide_with_envelope(self, tmp_path):
        # An index's own "kind" (unique/sorted) must survive a
        # serialization roundtrip intact.
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync=False)
        wal.append(
            "create_index",
            {"name": "i", "table": "t", "column": "c", "kind": "unique"},
        )
        reloaded = WriteAheadLog(path)
        record = reloaded.records()[0]
        assert record.kind == "create_index"
        assert record.payload["kind"] == "unique"

    def test_truncate_removes_file(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync=False)
        wal.append("create_table", {"name": "t"})
        wal.truncate()
        assert not path.exists()


class TestWalRecord:
    def test_json_roundtrip(self):
        record = WalRecord(7, "create_index", {"name": "i", "table": "t"})
        parsed = WalRecord.from_json(record.to_json())
        assert parsed == record

    def test_malformed_json(self):
        with pytest.raises(WalError):
            WalRecord.from_json("[1, 2]")

    def test_malformed_payload(self):
        with pytest.raises(WalError):
            WalRecord.from_json('{"lsn": 1, "kind": "checkpoint", "payload": 3}')

    def test_unknown_kind(self):
        with pytest.raises(WalError):
            WalRecord.from_json('{"lsn": 1, "kind": "vacuum"}')


class TestFromJsonHardening:
    def test_non_int_lsn_rejected(self):
        with pytest.raises(WalError):
            WalRecord.from_json('{"lsn": "1", "kind": "checkpoint"}')

    def test_float_lsn_rejected(self):
        with pytest.raises(WalError):
            WalRecord.from_json('{"lsn": 1.5, "kind": "checkpoint"}')

    def test_bool_lsn_rejected(self):
        # bool is an int subclass in Python; it must still be rejected.
        with pytest.raises(WalError):
            WalRecord.from_json('{"lsn": true, "kind": "checkpoint"}')

    def test_null_lsn_rejected(self):
        with pytest.raises(WalError):
            WalRecord.from_json('{"lsn": null, "kind": "checkpoint"}')

    def test_list_payload_rejected(self):
        with pytest.raises(WalError):
            WalRecord.from_json(
                '{"lsn": 1, "kind": "checkpoint", "payload": [1]}'
            )

    def test_string_payload_rejected(self):
        with pytest.raises(WalError):
            WalRecord.from_json(
                '{"lsn": 1, "kind": "checkpoint", "payload": "x"}'
            )

    def test_non_string_kind_rejected(self):
        with pytest.raises(WalError):
            WalRecord.from_json('{"lsn": 1, "kind": 3}')

    def test_missing_payload_defaults_empty(self):
        record = WalRecord.from_json('{"lsn": 1, "kind": "checkpoint"}')
        assert record.payload == {}


class TestDataRecords:
    def test_data_record_roundtrip(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.append("append", {"table": "t", "columns": {"c": [1, 2]}})
        assert [record.kind for record in wal.live_records()] == [
            "create_table",
            "append",
        ]

    def test_drop_table_elides_its_data(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.append("append", {"table": "t", "columns": {"c": [1]}})
        wal.append("drop_table", {"name": "t"})
        assert wal.live_records() == []

    def test_other_tables_data_survives_a_drop(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.append("create_table", {"name": "u"})
        wal.append("append", {"table": "u", "columns": {"c": [1]}})
        wal.append("drop_table", {"name": "t"})
        live = wal.live_records()
        assert [record.kind for record in live] == ["create_table", "append"]
        assert live[1].payload["table"] == "u"

    def test_checkpoint_markers_not_replayed(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.checkpoint()
        assert [record.kind for record in wal.live_records()] == [
            "create_table"
        ]
        assert wal.last_checkpoint_lsn() == 2


class TestCompact:
    def test_replay_unchanged_without_checkpoint(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.append("drop_table", {"name": "t"})
        wal.append("create_table", {"name": "t"})
        wal.append("append", {"table": "t", "columns": {"c": [1]}})
        before = wal.live_records()
        pruned = wal.compact()
        assert pruned == 2  # the cancelled create/drop pair
        assert wal.live_records() == before

    def test_checkpoint_prunes_covered_data_records(self):
        wal = WriteAheadLog()
        wal.append("create_table", {"name": "t"})
        wal.append("append", {"table": "t", "columns": {"c": [1]}})
        wal.checkpoint()
        wal.append("append", {"table": "t", "columns": {"c": [2]}})
        before = [
            record for record in wal.live_records() if record.kind != "append"
        ]
        tail = [record for record in wal.live_records() if record.lsn > 3]
        wal.compact()
        live = wal.live_records()
        # Metadata and the post-checkpoint tail survive; the covered
        # data record is gone.
        assert [record.kind for record in live] == ["create_table", "append"]
        assert live[1].lsn == 4
        assert before[0] in live
        assert tail == [live[1]]
        # The marker itself survives so the checkpoint LSN is known.
        assert wal.last_checkpoint_lsn() == 3

    def test_lsns_preserved_across_compaction(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync=False)
        wal.append("create_table", {"name": "t"})
        wal.append("append", {"table": "t", "columns": {"c": [1]}})
        wal.checkpoint()
        wal.compact()
        record = wal.append("create_table", {"name": "u"})
        assert record.lsn == 4
        reloaded = WriteAheadLog(path)
        assert [r.lsn for r in reloaded.records()] == [1, 3, 4]

    def test_compact_rewrites_file(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync=False)
        for position in range(5):
            wal.append("append", {"table": "t", "columns": {"c": [position]}})
        wal.checkpoint()
        wal.compact()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 1  # only the checkpoint marker remains
        reloaded = WriteAheadLog(path)
        assert reloaded.last_checkpoint_lsn() == 6

    def test_compact_empty_log_is_noop(self):
        wal = WriteAheadLog()
        assert wal.compact() == 0


class TestTornTail:
    def test_torn_tail_tolerated_when_enabled(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync=False)
        wal.append("create_table", {"name": "t"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"lsn": 2, "kind": "crea')  # torn mid-append
        recovered = WriteAheadLog(path, tolerate_torn_tail=True)
        assert len(recovered) == 1
        # The file was truncated back to the last complete record.
        assert path.read_text().count("\n") == 1
        assert recovered.append("drop_table", {"name": "t"}).lsn == 2

    def test_torn_tail_raises_by_default(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, sync=False)
        wal.append("create_table", {"name": "t"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"lsn": 2, "kind": "crea')
        with pytest.raises(WalError):
            WriteAheadLog(path)

    def test_mid_file_corruption_raises_even_when_tolerant(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text(
            '{"lsn": 1, "kind": "create_table", "payload": {"name": "t"}}\n'
            "garbage\n"
            '{"lsn": 3, "kind": "drop_table", "payload": {"name": "t"}}\n'
        )
        with pytest.raises(WalError):
            WriteAheadLog(path, tolerate_torn_tail=True)


class TestMetricsHook:
    def test_append_counts_records_and_bytes(self):
        from repro.obs import MetricsRegistry

        metrics = MetricsRegistry()
        wal = WriteAheadLog(metrics=metrics)
        wal.append("create_table", {"name": "t"})
        wal.append("append", {"table": "t", "columns": {"c": [1]}})
        assert metrics.counter("wal.records").value == 2
        assert metrics.counter("wal.data_records").value == 1
        assert metrics.counter("wal.bytes").value > 0
