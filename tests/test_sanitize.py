"""Runtime concurrency sanitizer: lock-order watchdog and resource ledger.

Unit half: :class:`SanitizedLock` raises a typed
:class:`~repro.errors.LockOrderError` (both stacks attached) the moment
an acquisition inverts a recorded order — no deadlock interleaving
required — and the :class:`ResourceLedger` turns unbalanced pins into
:class:`~repro.errors.ResourceLeakError` at teardown.

Fuzz half (the ISSUE's concurrent-session scenario): a durable database
behind a :class:`ServerThread` under ``REPRO_SANITIZE=1`` takes
concurrent readers, a writer, a checkpoint, a forced worker death and a
client that disconnects mid-query — and every balance (snapshot pins,
shm segments, cache accounting) must land back on zero.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.check import sanitize
from repro.check.sanitize import (
    ResourceLedger,
    SanitizedLock,
    make_lock,
)
from repro.errors import LockOrderError, ResourceLeakError


@pytest.fixture(autouse=True)
def _clean_graph():
    sanitize.reset()
    yield
    sanitize.reset()


# -- lock order watchdog ------------------------------------------------------


class TestSanitizedLock:
    def test_consistent_order_is_silent(self):
        a = SanitizedLock("unit.a")
        b = SanitizedLock("unit.b")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert ("unit.a", "unit.b") in sanitize.order_edges()

    def test_inversion_raises_with_both_stacks(self):
        a = SanitizedLock("unit.a")
        b = SanitizedLock("unit.b")
        with a:
            with b:
                pass
        with pytest.raises(LockOrderError) as excinfo:
            with b:
                with a:
                    pass
        error = excinfo.value
        assert error.first == "unit.b"
        assert error.second == "unit.a"
        assert "this acquisition" in str(error)
        assert "recorded acquisition" in str(error)
        assert error.current_stack and error.prior_stack

    def test_inversion_across_threads(self):
        a = SanitizedLock("unit.a")
        b = SanitizedLock("unit.b")

        def record():
            with a:
                with b:
                    pass

        worker = threading.Thread(target=record)
        worker.start()
        worker.join()
        # A *different* thread taking the opposite order still trips:
        # the graph is global, exactly like the deadlock would be.
        with pytest.raises(LockOrderError):
            with b:
                with a:
                    pass

    def test_same_thread_reacquire_raises_instead_of_hanging(self):
        lock = SanitizedLock("unit.self")
        with pytest.raises(LockOrderError) as excinfo:
            with lock:
                with lock:
                    pass
        assert excinfo.value.first == "unit.self"
        assert not lock.locked()

    def test_reentrant_lock_self_nests(self):
        lock = SanitizedLock("unit.reentrant", reentrant=True)
        with lock:
            with lock:
                pass
        assert not lock.locked()
        assert sanitize.order_edges() == {}

    def test_sibling_instances_share_a_graph_node(self):
        # Two instances of the same lock *site* must not create a
        # self-edge (e.g. two BlockCache instances in one process).
        first = SanitizedLock("unit.site")
        second = SanitizedLock("unit.site")
        with first:
            with second:
                pass
        assert sanitize.order_edges() == {}

    def test_held_time_histogram_recorded(self):
        lock = SanitizedLock("unit.timed")
        with lock:
            pass
        histogram = sanitize.registry().histogram(
            "sanitize.lock.unit.timed.held_seconds"
        )
        assert histogram.count >= 1

    def test_make_lock_plain_when_disabled(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_FLAG, raising=False)
        assert not isinstance(make_lock("unit.off"), SanitizedLock)

    def test_make_lock_sanitized_when_enabled(self, monkeypatch):
        monkeypatch.setenv(sanitize.ENV_FLAG, "1")
        lock = make_lock("unit.on", reentrant=True)
        assert isinstance(lock, SanitizedLock)
        assert lock.reentrant


# -- resource ledger ----------------------------------------------------------


class TestResourceLedger:
    def test_balanced_tracking(self):
        ledger = ResourceLedger()
        ledger.track("pin", "t1")
        ledger.track("pin", "t2")
        ledger.release("pin", "t1")
        assert ledger.balances() == {"pin": 1}
        ledger.release("pin", "t2")
        assert ledger.balances() == {}

    def test_unknown_release_is_ignored(self):
        # The coordinator unlinks worker-created shm blocks; its ledger
        # never saw the create and must not go negative.
        ledger = ResourceLedger()
        ledger.release("shm_segment", "never_tracked")
        assert ledger.balances() == {}

    def test_outstanding_carries_acquiring_stack(self):
        ledger = ResourceLedger()
        ledger.track("pin", "leaky")
        ((kind, token, count, stack),) = ledger.outstanding()
        assert (kind, token, count) == ("pin", "leaky", 1)
        assert "test_sanitize" in stack

    def test_assert_balanced_raises_on_leak(self, monkeypatch):
        monkeypatch.setenv(sanitize.ENV_FLAG, "1")
        sanitize.track_resource("snapshot_pin", "leaked-key")
        with pytest.raises(ResourceLeakError) as excinfo:
            sanitize.assert_balanced()
        assert "leaked-key" in str(excinfo.value)
        sanitize.reset()
        sanitize.assert_balanced()

    def test_disabled_tracking_is_a_noop(self, monkeypatch):
        monkeypatch.delenv(sanitize.ENV_FLAG, raising=False)
        sanitize.track_resource("snapshot_pin", "ghost")
        assert sanitize.ledger().balances() == {}


class TestCacheAccounting:
    def test_drifted_cache_is_reported(self, monkeypatch):
        monkeypatch.setenv(sanitize.ENV_FLAG, "1")
        from repro.storage.cache import BlockCache
        from repro.storage.column import ColumnVector
        from repro.types import DataType

        cache = BlockCache(capacity_bytes=1 << 20)
        vector = ColumnVector.from_pylist(DataType.INT64, list(range(64)))
        cache.put(("t", "s", "c", 0, 0), vector)
        assert sanitize.verify_caches() == []
        cache._bytes += 123  # simulate an unbalanced admit/evict pair
        problems = sanitize.verify_caches()
        assert problems and "drifted" in problems[0]


# -- end-to-end: pins, shm and locks under real concurrency -------------------


def _build_db(root, monkeypatch):
    import numpy as np

    from repro.storage.column import ColumnVector
    from repro.storage.database import Database
    from repro.storage.schema import Field, Schema
    from repro.types import DataType

    monkeypatch.setenv(sanitize.ENV_FLAG, "1")
    sanitize.reset()
    db = Database(path=root, mmap=True, sync=False)
    n = 8192
    schema = Schema([Field("k", DataType.INT64), Field("v", DataType.INT64)])
    table = db.create_table("fuzz", schema, partition_count=4)
    rng = np.random.default_rng(11)
    table.load_columns(
        {
            "k": ColumnVector(DataType.INT64, np.arange(n, dtype=np.int64)),
            "v": ColumnVector(
                DataType.INT64, rng.integers(0, 97, n).astype(np.int64)
            ),
        },
        partition_by_round_robin_blocks=True,
    )
    db.sql("CHECKPOINT")
    return db


class TestConcurrentSessionFuzz:
    def test_fuzz_balances_return_to_zero(self, tmp_path, monkeypatch):
        import repro
        from repro.exec.parallel import procpool
        from repro.exec.parallel.procpool import shutdown_process_pool
        from repro.serve import ServerClient, ServerThread
        from repro.serve.protocol import encode_frame

        db = _build_db(tmp_path / "data", monkeypatch)
        failures: list[BaseException] = []

        def reader(host, port):
            try:
                with ServerClient(host, port) as client:
                    for _ in range(12):
                        result = client.sql(
                            "SELECT COUNT(*) AS n FROM fuzz"
                        )
                        if result.scalar() < 8192:
                            raise AssertionError("reader saw missing rows")
            except BaseException as exc:  # noqa: BLE001 - collected
                failures.append(exc)

        def writer(host, port):
            try:
                with ServerClient(host, port) as client:
                    for step in range(12):
                        client.sql(
                            f"INSERT INTO fuzz VALUES ({100000 + step}, 1)"
                        )
                        if step == 6:
                            client.checkpoint()
            except BaseException as exc:  # noqa: BLE001 - collected
                failures.append(exc)

        try:
            with ServerThread(db) as server:
                threads = [
                    threading.Thread(target=reader, args=(server.host, server.port)),
                    threading.Thread(target=reader, args=(server.host, server.port)),
                    threading.Thread(target=writer, args=(server.host, server.port)),
                ]
                for thread in threads:
                    thread.start()
                # A rude client: sends a query frame and vanishes
                # without ever reading the response.
                rude = socket.create_connection(
                    (server.host, server.port), timeout=10
                )
                rude.sendall(
                    encode_frame(
                        {"op": "sql", "text": "SELECT COUNT(*) AS n FROM fuzz"}
                    )
                )
                rude.close()
                for thread in threads:
                    thread.join(timeout=60)
                for thread in threads:
                    if thread.is_alive():
                        raise AssertionError("fuzz thread hung")
            if failures:
                raise failures[0]

            # Forced worker death: each affected morsel retries
            # serially and the coordinator still reclaims every block.
            from tests.test_parallel_backends import assert_parity, run_query

            query = "SELECT k, v FROM fuzz WHERE v >= 0"
            serial = run_query(db, query, None, parallelism=1)
            monkeypatch.setattr(procpool, "FAULT_INJECTION", "exit")
            try:
                survived = run_query(
                    db, query, "process", parallelism=2, morsel_size=4096
                )
            finally:
                monkeypatch.setattr(procpool, "FAULT_INJECTION", None)
            assert_parity(query, serial, survived)
        finally:
            shutdown_process_pool()
            db.close()

        assert sanitize.check_balances() == []
        assert sanitize.leaked_shm_segments() == []
        # The engine's hot locks really were sanitized: held-time
        # histograms exist for the snapshot lock the fuzz hammered.
        held = sanitize.registry().histogram(
            "sanitize.lock.storage.engine.snapshot.held_seconds"
        )
        assert held.count > 0
