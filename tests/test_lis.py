"""Property and unit tests for the longest sorted subsequence algorithm."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.lis import (
    longest_sorted_subsequence_indices,
    longest_sorted_subsequence_length,
)


def brute_force_length(values, ascending=True, strict=False) -> int:
    """O(n^2) DP reference for the LIS length."""
    n = len(values)
    if n == 0:
        return 0
    best = [1] * n
    for i in range(n):
        for j in range(i):
            if _ok(values[j], values[i], ascending, strict):
                best[i] = max(best[i], best[j] + 1)
    return max(best)


def _ok(a, b, ascending, strict) -> bool:
    if ascending:
        return a < b if strict else a <= b
    return a > b if strict else a >= b


def check_subsequence(values, indices, ascending=True, strict=False):
    """The returned indices must be ascending and select a sorted run."""
    assert list(indices) == sorted(set(int(i) for i in indices))
    selected = [values[int(i)] for i in indices]
    for left, right in zip(selected[:-1], selected[1:]):
        assert _ok(left, right, ascending, strict)


class TestSmallCases:
    def test_empty(self):
        assert len(longest_sorted_subsequence_indices(np.array([], dtype=np.int64))) == 0

    def test_single(self):
        indices = longest_sorted_subsequence_indices(np.array([5], dtype=np.int64))
        assert indices.tolist() == [0]

    def test_already_sorted(self):
        values = np.arange(10, dtype=np.int64)
        assert longest_sorted_subsequence_indices(values).tolist() == list(range(10))

    def test_reverse_sorted(self):
        values = np.arange(10, dtype=np.int64)[::-1].copy()
        assert longest_sorted_subsequence_length(values) == 1

    def test_mixed_disorder(self):
        # 1,3,3,6,7 (or 1,3,4,6,7 / 1,3,3,6,6) is a longest run: length 5.
        values = np.array([1, 3, 4, 3, 2, 6, 7, 6], dtype=np.int64)
        assert longest_sorted_subsequence_length(values) == 5

    def test_duplicates_nonstrict(self):
        values = np.array([2, 2, 2], dtype=np.int64)
        assert longest_sorted_subsequence_length(values) == 3

    def test_duplicates_strict(self):
        values = np.array([2, 2, 2], dtype=np.int64)
        assert longest_sorted_subsequence_length(values, strict=True) == 1

    def test_descending(self):
        values = np.array([5, 6, 4, 3, 7, 2], dtype=np.int64)
        indices = longest_sorted_subsequence_indices(values, ascending=False)
        check_subsequence(values, indices, ascending=False)
        assert len(indices) == 4  # 5, 4, 3, 2 (or 6, 4, 3, 2)

    def test_strings(self):
        values = np.array(["b", "a", "c", "c", "b", "d"], dtype=object)
        indices = longest_sorted_subsequence_indices(values)
        check_subsequence(values, indices)
        assert len(indices) == 4  # a c c d  (or b c c d)

    def test_strings_descending(self):
        values = np.array(["b", "c", "a"], dtype=object)
        indices = longest_sorted_subsequence_indices(values, ascending=False)
        check_subsequence(values, indices, ascending=False)
        assert len(indices) == 2

    def test_floats(self):
        values = np.array([0.5, 0.1, 0.2, 0.9], dtype=np.float64)
        assert longest_sorted_subsequence_length(values) == 3


class TestProperties:
    @given(st.lists(st.integers(-50, 50), max_size=60), st.booleans(), st.booleans())
    @settings(max_examples=200)
    def test_matches_brute_force_and_is_valid(self, items, ascending, strict):
        values = np.array(items, dtype=np.int64)
        indices = longest_sorted_subsequence_indices(
            values, ascending=ascending, strict=strict
        )
        check_subsequence(items, indices, ascending, strict)
        assert len(indices) == brute_force_length(items, ascending, strict)

    @given(st.lists(st.text(alphabet="abc", max_size=3), max_size=40))
    def test_object_dtype_matches_brute_force(self, items):
        values = np.empty(len(items), dtype=object)
        for position, item in enumerate(items):
            values[position] = item
        indices = longest_sorted_subsequence_indices(values)
        check_subsequence(items, indices)
        assert len(indices) == brute_force_length(items)

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=50))
    def test_sorted_input_is_fixed_point(self, items):
        items.sort()
        values = np.array(items, dtype=np.int64)
        assert longest_sorted_subsequence_length(values) == len(items)
