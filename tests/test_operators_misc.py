"""Unit tests for Filter, Project, Limit, UnionAll, RecordBatch."""

import numpy as np
import pytest

from repro.errors import ExecutionError, PlanError, SchemaError
from repro.exec.batch import RecordBatch
from repro.exec.expressions import Arithmetic, ColumnRef, Comparison, Literal
from repro.exec.operators.filter import Filter
from repro.exec.operators.limit import Limit
from repro.exec.operators.project import Project
from repro.exec.operators.scan import TableScan
from repro.exec.operators.union import UnionAll
from repro.exec.result import collect
from repro.storage.column import ColumnVector
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType


def make_table(values, partition_count=2):
    return Table.from_pydict(
        "t",
        Schema([Field("v", DataType.INT64)]),
        {"v": values},
        partition_count=partition_count,
    )


class TestRecordBatch:
    def test_contiguous_range(self):
        schema = Schema([Field("v", DataType.INT64)])
        vector = ColumnVector.from_pylist(DataType.INT64, [1, 2, 3])
        batch = RecordBatch(schema, {"v": vector}, np.array([5, 6, 7]))
        assert batch.contiguous_range == (5, 8)
        gapped = RecordBatch(schema, {"v": vector}, np.array([5, 6, 9]))
        assert gapped.contiguous_range is None
        no_rowids = RecordBatch(schema, {"v": vector})
        assert no_rowids.contiguous_range is None

    def test_length_mismatch_rejected(self):
        schema = Schema([Field("v", DataType.INT64)])
        vector = ColumnVector.from_pylist(DataType.INT64, [1, 2])
        with pytest.raises(ExecutionError):
            RecordBatch(schema, {"v": vector}, np.array([1]))

    def test_missing_column_rejected(self):
        schema = Schema([Field("v", DataType.INT64)])
        with pytest.raises(SchemaError):
            RecordBatch(schema, {})

    def test_concat_drops_rowids_when_partial(self):
        schema = Schema([Field("v", DataType.INT64)])
        with_ids = RecordBatch(
            schema,
            {"v": ColumnVector.from_pylist(DataType.INT64, [1])},
            np.array([0]),
        )
        without = RecordBatch(
            schema, {"v": ColumnVector.from_pylist(DataType.INT64, [2])}
        )
        merged = RecordBatch.concat([with_ids, without])
        assert merged.rowids is None
        assert merged.column("v").to_pylist() == [1, 2]

    def test_project(self):
        schema = Schema([Field("a", DataType.INT64), Field("b", DataType.INT64)])
        batch = RecordBatch(
            schema,
            {
                "a": ColumnVector.from_pylist(DataType.INT64, [1]),
                "b": ColumnVector.from_pylist(DataType.INT64, [2]),
            },
        )
        assert batch.project(["b"]).schema.names == ("b",)


class TestFilter:
    def test_basic(self):
        table = make_table([1, 2, 3, 4, 5])
        result = collect(
            Filter(TableScan(table), Comparison(">=", ColumnRef("v"), Literal(3)))
        )
        assert result.column("v").to_pylist() == [3, 4, 5]

    def test_null_predicate_drops_row(self):
        table = make_table([1, None, 3])
        result = collect(
            Filter(TableScan(table), Comparison(">", ColumnRef("v"), Literal(0)))
        )
        assert result.column("v").to_pylist() == [1, 3]

    def test_rowids_propagate(self):
        table = make_table([1, 2, 3, 4])
        operator = Filter(
            TableScan(table), Comparison(">", ColumnRef("v"), Literal(2))
        )
        operator.open()
        rowids = []
        while True:
            batch = operator.next_batch()
            if batch is None:
                break
            rowids.extend(batch.rowids.tolist())
        assert rowids == [2, 3]


class TestProject:
    def test_rename_and_compute(self):
        table = make_table([1, 2])
        result = collect(
            Project(
                TableScan(table),
                [
                    ("x", ColumnRef("v")),
                    ("double", Arithmetic("*", ColumnRef("v"), Literal(2))),
                ],
            )
        )
        assert result.column_names == ("x", "double")
        assert result.column("double").to_pylist() == [2, 4]

    def test_empty_outputs_rejected(self):
        with pytest.raises(PlanError):
            Project(TableScan(make_table([1])), [])


class TestLimit:
    def test_limit(self):
        table = make_table(list(range(10)))
        result = collect(Limit(TableScan(table, batch_size=3), 4))
        assert result.column("v").to_pylist() == [0, 1, 2, 3]

    def test_offset(self):
        table = make_table(list(range(10)))
        result = collect(Limit(TableScan(table, batch_size=3), 4, offset=7))
        assert result.column("v").to_pylist() == [7, 8, 9]

    def test_limit_zero(self):
        table = make_table([1, 2])
        result = collect(Limit(TableScan(table), 0))
        assert result.row_count == 0

    def test_negative_rejected(self):
        with pytest.raises(PlanError):
            Limit(TableScan(make_table([1])), -1)


class TestUnionAll:
    def test_concatenates_in_order(self):
        first = make_table([1, 2])
        second = make_table([3])
        result = collect(UnionAll([TableScan(first), TableScan(second)]))
        assert result.column("v").to_pylist() == [1, 2, 3]

    def test_renames_later_children(self):
        first = make_table([1])
        other = Table.from_pydict(
            "o", Schema([Field("w", DataType.INT64)]), {"w": [2]}
        )
        result = collect(UnionAll([TableScan(first), TableScan(other)]))
        assert result.column_names == ("v",)
        assert result.column("v").to_pylist() == [1, 2]

    def test_type_mismatch_rejected(self):
        first = make_table([1])
        other = Table.from_pydict(
            "o", Schema([Field("s", DataType.STRING)]), {"s": ["x"]}
        )
        with pytest.raises(PlanError):
            UnionAll([TableScan(first), TableScan(other)])

    def test_empty_inputs_rejected(self):
        with pytest.raises(PlanError):
            UnionAll([])
