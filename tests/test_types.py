"""Unit tests for the logical type system."""

import datetime as dt

import numpy as np
import pytest

from repro.errors import TypeMismatchError
from repro.types import (
    DataType,
    coerce_scalar,
    common_type,
    infer_datatype,
    is_numeric,
    is_orderable,
    numpy_dtype,
    python_type,
)
from repro.types.datatypes import date_to_days, days_to_date


class TestDataTypeNames:
    def test_from_name_aliases(self):
        assert DataType.from_name("BIGINT") == DataType.INT64
        assert DataType.from_name("integer") == DataType.INT64
        assert DataType.from_name("varchar") == DataType.STRING
        assert DataType.from_name("DOUBLE") == DataType.FLOAT64
        assert DataType.from_name("Boolean") == DataType.BOOL
        assert DataType.from_name("date") == DataType.DATE

    def test_from_name_unknown_raises(self):
        with pytest.raises(TypeMismatchError):
            DataType.from_name("blob")

    def test_numpy_mapping(self):
        assert numpy_dtype(DataType.INT64) == np.dtype(np.int64)
        assert numpy_dtype(DataType.DATE) == np.dtype(np.int64)
        assert numpy_dtype(DataType.STRING) == np.dtype(object)
        assert numpy_dtype(DataType.BOOL) == np.dtype(np.bool_)

    def test_python_mapping(self):
        assert python_type(DataType.INT64) is int
        assert python_type(DataType.DATE) is dt.date


class TestPredicatesOnTypes:
    def test_numeric(self):
        assert is_numeric(DataType.INT64)
        assert is_numeric(DataType.FLOAT64)
        assert not is_numeric(DataType.STRING)

    def test_orderable_everything(self):
        assert all(is_orderable(dtype) for dtype in DataType)

    def test_common_type(self):
        assert common_type(DataType.INT64, DataType.FLOAT64) == DataType.FLOAT64
        assert common_type(DataType.STRING, DataType.STRING) == DataType.STRING

    def test_common_type_mismatch(self):
        with pytest.raises(TypeMismatchError):
            common_type(DataType.STRING, DataType.INT64)


class TestInference:
    def test_infer_basic(self):
        assert infer_datatype(1) == DataType.INT64
        assert infer_datatype(1.5) == DataType.FLOAT64
        assert infer_datatype("x") == DataType.STRING
        assert infer_datatype(True) == DataType.BOOL
        assert infer_datatype(dt.date(2020, 1, 1)) == DataType.DATE

    def test_bool_is_not_int(self):
        assert infer_datatype(True) == DataType.BOOL

    def test_infer_unknown_raises(self):
        with pytest.raises(TypeMismatchError):
            infer_datatype(object())


class TestCoercion:
    def test_none_passes_through(self):
        for dtype in DataType:
            assert coerce_scalar(None, dtype) is None

    def test_int(self):
        assert coerce_scalar(5, DataType.INT64) == 5
        with pytest.raises(TypeMismatchError):
            coerce_scalar("5", DataType.INT64)
        with pytest.raises(TypeMismatchError):
            coerce_scalar(True, DataType.INT64)

    def test_float_accepts_int(self):
        assert coerce_scalar(5, DataType.FLOAT64) == 5.0
        assert isinstance(coerce_scalar(5, DataType.FLOAT64), float)

    def test_date_roundtrip(self):
        day = dt.date(2001, 9, 9)
        days = coerce_scalar(day, DataType.DATE)
        assert isinstance(days, int)
        assert days_to_date(days) == day

    def test_date_epoch(self):
        assert date_to_days(dt.date(1970, 1, 1)) == 0
        assert days_to_date(0) == dt.date(1970, 1, 1)

    def test_date_rejects_datetime(self):
        with pytest.raises(TypeMismatchError):
            coerce_scalar(dt.datetime(2020, 1, 1, 12, 0), DataType.DATE)

    def test_string(self):
        assert coerce_scalar("x", DataType.STRING) == "x"
        with pytest.raises(TypeMismatchError):
            coerce_scalar(5, DataType.STRING)

    def test_bool(self):
        assert coerce_scalar(True, DataType.BOOL) is True
        with pytest.raises(TypeMismatchError):
            coerce_scalar(1, DataType.BOOL)
