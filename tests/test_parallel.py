"""Morsel-driven parallel execution: dispatch, pool, equivalence.

Every parallel plan must be byte-identical to its serial counterpart —
ordered gather in morsel (= rowid) order, stable pairwise merges, and
two-phase aggregation that preserves the serial group order.  The tests
force parallel plans on small tables with a zero-overhead cost model;
the default model keeps such tables serial (checked too).
"""

import numpy as np
import pytest

from repro.core.cost_model import CostModel
from repro.errors import PlanError, StorageError
from repro.exec.operators import (
    Distinct,
    HashAggregate,
    PatchSelect,
    PatchSelectMode,
    Sort,
    TableScan,
)
from repro.exec.operators.aggregate import AggregateSpec
from repro.exec.operators.sort import SortKey
from repro.exec.parallel import (
    BatchSource,
    Exchange,
    Morsel,
    ParallelAggregate,
    ParallelDistinct,
    ParallelSort,
    default_parallelism,
    morsels_for_table,
)
from repro.exec.result import collect
from repro.plan.optimizer import Optimizer
from repro.plan.physical import PhysicalPlanner
from repro.sql.binder import Binder
from repro.sql.parser import parse_statement
from repro.storage.database import Database
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType

#: Cost model that always says "parallelize" for >= 2 morsels.
FORCE = CostModel(parallel_startup_weight=0.0, morsel_dispatch_weight=0.0)


def make_table(n=100, partition_count=3, block_size=8, name="t"):
    return Table.from_pydict(
        name,
        Schema([Field("x", DataType.INT64)]),
        {"x": list(range(n))},
        partition_count=partition_count,
        block_size=block_size,
    )


def covered_rowids(morsels):
    out = []
    for morsel in morsels:
        for start, stop in morsel.ranges:
            out.extend(range(start, stop))
    return out


class TestMorselDispatch:
    def test_full_table_covers_every_rowid_exactly_once(self):
        table = make_table(n=100, partition_count=3, block_size=8)
        morsels = morsels_for_table(table, None, morsel_size=16)
        rowids = covered_rowids(morsels)
        assert rowids == list(range(100))  # in order, no dup, no split

    def test_morsels_never_cross_partitions(self):
        table = make_table(n=90, partition_count=4, block_size=4)
        morsels = morsels_for_table(table, None, morsel_size=1 << 30)
        partition_ranges = [p.rowid_range for p in table.partitions]
        for morsel in morsels:
            lo = morsel.ranges[0][0]
            hi = morsel.ranges[-1][1]
            assert any(
                p_start <= lo and hi <= p_stop
                for p_start, p_stop in partition_ranges
            )
        # One morsel per partition when the size cap never triggers.
        assert len(morsels) == len(table.partitions)

    def test_boundaries_align_to_block_grid(self):
        table = make_table(n=64, partition_count=1, block_size=8)
        morsels = morsels_for_table(table, None, morsel_size=16)
        for morsel in morsels[:-1]:
            assert morsel.ranges[-1][1] % 8 == 0

    def test_restricted_ranges_cover_exactly_the_request(self):
        table = make_table(n=100, partition_count=3, block_size=8)
        requested = [(5, 20), (40, 45), (90, 200)]  # last clipped to 100
        morsels = morsels_for_table(table, requested, morsel_size=8)
        expected = (
            list(range(5, 20)) + list(range(40, 45)) + list(range(90, 100))
        )
        assert covered_rowids(morsels) == expected

    def test_small_pruned_ranges_coalesce_into_one_morsel(self):
        table = make_table(n=64, partition_count=1, block_size=8)
        # Three disjoint 4-row islands, 12 rows total, under morsel_size.
        morsels = morsels_for_table(
            table, [(0, 4), (16, 20), (32, 36)], morsel_size=64
        )
        assert len(morsels) == 1
        assert morsels[0].ranges == ((0, 4), (16, 20), (32, 36))
        assert morsels[0].rows == 12

    def test_adjacent_chunks_merge_within_a_morsel(self):
        table = make_table(n=32, partition_count=1, block_size=4)
        morsels = morsels_for_table(table, None, morsel_size=1 << 30)
        assert len(morsels) == 1
        assert morsels[0].ranges == ((0, 32),)

    def test_empty_table_has_no_morsels(self):
        table = Table("e", Schema([Field("x", DataType.INT64)]), 2)
        assert morsels_for_table(table, None, morsel_size=8) == []

    def test_empty_request_has_no_morsels(self):
        table = make_table(n=20)
        assert morsels_for_table(table, [(5, 5)], morsel_size=8) == []


class TestPartitionMorselRanges:
    def test_covers_partition_on_block_grid(self):
        table = make_table(n=20, partition_count=1, block_size=4)
        partition = table.partitions[0]
        ranges = partition.morsel_ranges(8)
        assert ranges == [(0, 8), (8, 16), (16, 20)]

    def test_morsel_size_below_block_size_rounds_up(self):
        table = make_table(n=16, partition_count=1, block_size=8)
        assert table.partitions[0].morsel_ranges(2) == [(0, 8), (8, 16)]

    def test_rejects_non_positive(self):
        table = make_table(n=8, partition_count=1)
        with pytest.raises(StorageError):
            table.partitions[0].morsel_ranges(0)


class TestPool:
    def test_repro_threads_env_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "7")
        assert default_parallelism() == 7

    def test_repro_threads_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "0")
        assert default_parallelism() == 1

    def test_repro_threads_must_be_integer(self, monkeypatch):
        monkeypatch.setenv("REPRO_THREADS", "lots")
        with pytest.raises(PlanError):
            default_parallelism()

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_THREADS", raising=False)
        import os

        assert default_parallelism() == (os.cpu_count() or 1)


def scan_factory(table, **kwargs):
    def build(ranges):
        return TableScan(table, scan_ranges=ranges, batch_size=16, **kwargs)

    return build


class TestExchange:
    def test_scan_equivalence_and_order(self):
        table = make_table(n=100, partition_count=3, block_size=8)
        build = scan_factory(table)
        morsels = morsels_for_table(table, None, morsel_size=16)
        parallel = collect(Exchange(build, build(None), morsels, 4))
        serial = collect(build(None))
        assert parallel.to_pylist() == serial.to_pylist()

    def test_restricted_scan_equivalence(self):
        table = make_table(n=100, partition_count=3, block_size=8)
        requested = [(3, 30), (60, 95)]
        build = scan_factory(table)
        morsels = morsels_for_table(table, requested, morsel_size=8)
        parallel = collect(Exchange(build, build(requested), morsels, 4))
        serial = collect(build(requested))
        assert parallel.to_pylist() == serial.to_pylist()

    @pytest.mark.parametrize(
        "mode", [PatchSelectMode.USE_PATCHES, PatchSelectMode.EXCLUDE_PATCHES]
    )
    def test_patch_select_per_morsel(self, mode):
        rng = np.random.default_rng(7)
        values = list(range(120))
        for rowid in rng.choice(120, 15, replace=False):
            values[int(rowid)] = 3  # duplicates become patches
        db = Database()
        db.create_table_from_pydict(
            "p",
            Schema([Field("x", DataType.INT64)]),
            {"x": values},
            partition_count=3,
        )
        index = db.create_patch_index("pi", "p", "x", kind="unique")
        table = db.table("p")

        def build(ranges):
            return PatchSelect(
                TableScan(table, scan_ranges=ranges, batch_size=16), index, mode
            )

        morsels = morsels_for_table(table, None, morsel_size=16)
        parallel = collect(Exchange(build, build(None), morsels, 4))
        serial = collect(build(None))
        assert parallel.to_pylist() == serial.to_pylist()

    def test_no_morsels_yields_empty(self):
        table = Table("e", Schema([Field("x", DataType.INT64)]), 1)
        build = scan_factory(table)
        result = collect(Exchange(build, build(None), [], 4))
        assert result.row_count == 0

    def test_template_shown_in_explain_but_never_opened(self):
        table = make_table(n=32)
        build = scan_factory(table)
        template = build(None)
        morsels = morsels_for_table(table, None, morsel_size=8)
        exchange = Exchange(build, template, morsels, 3)
        text = exchange.explain()
        assert "Exchange(dop=3" in text
        assert "TableScan" in text
        collect(exchange)  # template must survive untouched
        assert collect(template).row_count == 32


def run_query(db, sql, planner):
    statement = parse_statement(sql)
    logical = Optimizer(db.catalog).optimize(
        Binder(db.catalog).bind_select(statement)
    )
    return planner.plan(logical)


def parallel_planner(workers=4, morsel_size=16):
    return PhysicalPlanner(
        parallelism=workers, morsel_size=morsel_size, cost_model=FORCE
    )


def serial_planner():
    return PhysicalPlanner(parallelism=1)


@pytest.fixture
def db():
    rng = np.random.default_rng(42)
    n = 400
    values = rng.integers(0, 50, n)
    nullable = [
        None if i % 17 == 0 else int(values[i]) for i in range(n)
    ]
    database = Database()
    database.create_table_from_pydict(
        "t",
        Schema(
            [
                Field("g", DataType.INT64),
                Field("v", DataType.INT64),
            ]
        ),
        {"g": [int(x) % 7 for x in values], "v": nullable},
        partition_count=3,
    )
    return database


def assert_equivalent(db, sql, workers=4, morsel_size=16):
    parallel_op = run_query(db, sql, parallel_planner(workers, morsel_size))
    serial_op = run_query(db, sql, serial_planner())
    parallel = collect(parallel_op)
    serial = collect(serial_op)
    assert parallel.to_pylist() == serial.to_pylist(), sql
    return parallel_op


class TestPlannedEquivalence:
    def test_bare_pipeline_becomes_exchange(self, db):
        op = assert_equivalent(db, "SELECT v FROM t WHERE v > 10")
        assert "Exchange(dop=4" in op.explain()

    def test_distinct(self, db):
        op = assert_equivalent(db, "SELECT DISTINCT g, v FROM t")
        assert "ParallelDistinct(dop=4" in op.explain()

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT v FROM t ORDER BY v",
            "SELECT v FROM t ORDER BY v DESC",
            "SELECT g, v FROM t ORDER BY g, v DESC",
            "SELECT v FROM t WHERE v < 25 ORDER BY v",
        ],
    )
    def test_sort_with_nulls(self, db, sql):
        op = assert_equivalent(db, sql)
        text = op.explain()
        assert "ParallelSort(" in text and "dop=4" in text

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT COUNT(*) AS n FROM t",
            "SELECT COUNT(v) AS n FROM t",
            "SELECT SUM(v) AS s FROM t",
            "SELECT MIN(v) AS lo, MAX(v) AS hi FROM t",
            "SELECT AVG(v) AS a FROM t",
            "SELECT COUNT(*) AS n, SUM(v) AS s, AVG(v) AS a FROM t",
            "SELECT g, COUNT(*) AS n FROM t GROUP BY g",
            "SELECT g, SUM(v) AS s, MIN(v) AS lo, AVG(v) AS a "
            "FROM t GROUP BY g",
            "SELECT g, COUNT(v) AS n FROM t WHERE v > 5 GROUP BY g",
        ],
    )
    def test_two_phase_aggregates(self, db, sql):
        op = assert_equivalent(db, sql)
        text = op.explain()
        assert "ParallelAggregate(" in text and "dop=4" in text

    def test_count_distinct_alone(self, db):
        op = assert_equivalent(db, "SELECT COUNT(DISTINCT v) AS n FROM t")
        text = op.explain()
        assert "ParallelAggregate(" in text and "dop=4" in text
        assert "distinct-partials" in text

    def test_count_distinct_grouped(self, db):
        assert_equivalent(
            db, "SELECT g, COUNT(DISTINCT v) AS n FROM t GROUP BY g"
        )

    def test_mixed_count_distinct_uses_exchange_fallback(self, db):
        sql = "SELECT COUNT(DISTINCT v) AS d, COUNT(*) AS n FROM t"
        op = assert_equivalent(db, sql)
        text = op.explain()
        assert "HashAggregate" in text and "Exchange(dop=4" in text
        assert "ParallelAggregate" not in text

    def test_avg_all_null_group(self):
        database = Database()
        database.create_table_from_pydict(
            "n",
            Schema([Field("g", DataType.INT64), Field("v", DataType.INT64)]),
            {"g": [1, 1, 2, 2] * 10, "v": [None, None, 5, 7] * 10},
            partition_count=2,
        )
        assert_equivalent(
            database,
            "SELECT g, AVG(v) AS a, COUNT(v) AS n FROM n GROUP BY g",
            morsel_size=4,
        )

    def test_scan_range_pruning_composes(self, db):
        sql = "SELECT v FROM t WHERE g >= 3"
        parallel_op = run_query(db, sql, parallel_planner())
        text = parallel_op.explain()
        assert "Exchange(dop=4" in text
        assert_equivalent(db, sql)

    def test_nuc_distinct_rewrite_composes(self):
        rng = np.random.default_rng(3)
        values = rng.permutation(300).astype(np.int64)
        values[rng.choice(300, 20, replace=False)] = 9
        database = Database()
        database.create_table_from_pydict(
            "u",
            Schema([Field("c", DataType.INT64)]),
            {"c": [int(v) for v in values]},
            partition_count=3,
        )
        database.create_patch_index("pi", "u", "c", kind="unique")
        op = assert_equivalent(database, "SELECT DISTINCT c FROM u")
        text = op.explain()
        # Both rewrite branches run in parallel over the PatchSelect.
        assert "PatchSelect(mode=exclude_patches" in text
        assert "PatchSelect(mode=use_patches" in text
        assert "dop=4" in text

    def test_parallelism_one_plans_serial(self, db):
        op = run_query(
            db,
            "SELECT DISTINCT v FROM t",
            PhysicalPlanner(parallelism=1, morsel_size=16, cost_model=FORCE),
        )
        assert "dop=" not in op.explain()

    def test_default_cost_model_keeps_small_tables_serial(self, db):
        op = run_query(
            db,
            "SELECT DISTINCT v FROM t",
            PhysicalPlanner(parallelism=8),
        )
        assert "dop=" not in op.explain()

    def test_join_inputs_still_parallelize(self, db):
        db.create_table_from_pydict(
            "d",
            Schema([Field("g", DataType.INT64), Field("name", DataType.INT64)]),
            {"g": list(range(7)), "name": [x * 10 for x in range(7)]},
        )
        sql = (
            "SELECT t.v, d.name FROM t JOIN d ON t.g = d.g "
            "WHERE t.v > 20"
        )
        op = assert_equivalent(db, sql)
        assert "Exchange(dop=4" in op.explain()


class TestParallelOperatorsDirect:
    def test_parallel_distinct_matches_serial(self):
        table = make_table(n=60, partition_count=2, block_size=4)

        def build(ranges):
            scan = TableScan(table, scan_ranges=ranges, batch_size=8)
            return scan

        morsels = morsels_for_table(table, None, morsel_size=8)
        parallel = collect(
            ParallelDistinct(build, build(None), morsels, 3)
        )
        serial = collect(Distinct(build(None)))
        assert parallel.to_pylist() == serial.to_pylist()

    def test_parallel_sort_matches_serial_stable(self):
        rng = np.random.default_rng(11)
        database = Database()
        database.create_table_from_pydict(
            "s",
            Schema([Field("k", DataType.INT64), Field("v", DataType.INT64)]),
            {
                "k": [int(x) for x in rng.integers(0, 5, 200)],
                "v": list(range(200)),
            },
            partition_count=3,
        )
        table = database.table("s")
        keys = [SortKey("k")]

        def build(ranges):
            return TableScan(table, scan_ranges=ranges, batch_size=16)

        morsels = morsels_for_table(table, None, morsel_size=16)
        parallel = collect(
            ParallelSort(build, build(None), morsels, 4, keys)
        )
        serial = collect(Sort(build(None), keys))
        # Stability: equal keys keep scan (rowid) order in both plans.
        assert parallel.to_pylist() == serial.to_pylist()

    def test_parallel_aggregate_empty_input_global(self):
        table = Table("e", Schema([Field("x", DataType.INT64)]), 1)

        def build(ranges):
            return TableScan(table, scan_ranges=ranges, batch_size=8)

        specs = [
            AggregateSpec("count_star", None, "n"),
            AggregateSpec("sum", "x", "s"),
        ]
        parallel = collect(
            ParallelAggregate(build, build(None), [], 4, [], specs)
        )
        serial = collect(HashAggregate(build(None), [], specs))
        assert parallel.to_pylist() == serial.to_pylist()
        assert parallel.to_pylist() == [(0, None)]

    def test_mixed_count_distinct_spec_rejected(self):
        table = make_table(n=16)

        def build(ranges):
            return TableScan(table, scan_ranges=ranges, batch_size=8)

        specs = [
            AggregateSpec("count_distinct", "x", "d"),
            AggregateSpec("sum", "x", "s"),
        ]
        with pytest.raises(PlanError):
            ParallelAggregate(
                build, build(None), morsels_for_table(table), 2, [], specs
            )

    def test_batch_source_replays_batches(self):
        table = make_table(n=24, partition_count=1)
        scan = TableScan(table, batch_size=8)
        batches = []
        scan.open()
        while True:
            batch = scan.next_batch()
            if batch is None:
                break
            batches.append(batch)
        scan.close()
        replay = collect(BatchSource(scan.schema, batches))
        assert replay.column("x").to_pylist() == list(range(24))


class TestSessionKnob:
    def test_database_sql_accepts_parallelism(self, db):
        serial = db.sql("SELECT g, COUNT(*) AS n FROM t GROUP BY g",
                        parallelism=1)
        default = db.sql("SELECT g, COUNT(*) AS n FROM t GROUP BY g")
        assert serial.to_pylist() == default.to_pylist()

    def test_database_explain_accepts_parallelism(self, db):
        text = db.explain("SELECT DISTINCT v FROM t", parallelism=1)
        assert "Distinct" in text and "dop=" not in text

    def test_instance_default_threads(self, db):
        db.parallelism = 1
        assert "dop=" not in db.explain("SELECT DISTINCT v FROM t")

    def test_large_table_parallelizes_under_default_model(self):
        n = 400_000
        database = Database()
        database.create_table_from_pydict(
            "big",
            Schema([Field("x", DataType.INT64)]),
            {"x": list(range(n))},
            partition_count=4,
        )
        text = database.explain(
            "SELECT COUNT(*) AS n FROM big", parallelism=4
        )
        assert "ParallelAggregate(" in text and "dop=4" in text
        parallel = database.sql("SELECT COUNT(*) AS n FROM big",
                                parallelism=4)
        serial = database.sql("SELECT COUNT(*) AS n FROM big", parallelism=1)
        assert parallel.to_pylist() == serial.to_pylist() == [(n,)]


class TestMorselDataclass:
    def test_rows_property(self):
        morsel = Morsel(((0, 4), (8, 10)))
        assert morsel.rows == 6

    def test_hashable_and_frozen(self):
        morsel = Morsel(((0, 4),))
        assert hash(morsel) == hash(Morsel(((0, 4),)))
        with pytest.raises(Exception):
            morsel.ranges = ()
