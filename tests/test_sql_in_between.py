"""Tests for IN-list and BETWEEN predicates (parser, binder, execution)."""

import pytest

from repro import Database
from repro.errors import SqlSyntaxError
from repro.exec.batch import RecordBatch
from repro.exec.expressions import ColumnRef, InList
from repro.sql import ast
from repro.sql.parser import parse_statement
from repro.storage.column import ColumnVector
from repro.storage.schema import Field, Schema
from repro.types import DataType


@pytest.fixture
def db() -> Database:
    db = Database()
    db.sql("CREATE TABLE t (c BIGINT, s VARCHAR(5))")
    db.sql(
        "INSERT INTO t VALUES (1,'a'), (2,'b'), (3,'c'), (NULL,'d'), (5,'e')"
    )
    return db


class TestParser:
    def test_in(self):
        statement = parse_statement("SELECT c FROM t WHERE c IN (1, 2, 3)")
        where = statement.where
        assert isinstance(where, ast.SqlIn)
        assert where.values == (1, 2, 3)
        assert not where.negated

    def test_not_in(self):
        statement = parse_statement("SELECT c FROM t WHERE c NOT IN (1)")
        assert statement.where.negated

    def test_between(self):
        statement = parse_statement("SELECT c FROM t WHERE c BETWEEN 1 AND 5")
        where = statement.where
        assert isinstance(where, ast.SqlBetween)
        assert not where.negated

    def test_not_between(self):
        statement = parse_statement(
            "SELECT c FROM t WHERE c NOT BETWEEN 1 AND 5"
        )
        assert statement.where.negated

    def test_null_in_list_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_statement("SELECT c FROM t WHERE c IN (1, NULL)")

    def test_between_binds_tighter_than_and(self):
        statement = parse_statement(
            "SELECT c FROM t WHERE c BETWEEN 1 AND 3 AND c > 0"
        )
        assert isinstance(statement.where, ast.SqlBinary)
        assert statement.where.op == "and"
        assert isinstance(statement.where.left, ast.SqlBetween)


class TestExecution:
    def test_in(self, db):
        result = db.sql("SELECT s FROM t WHERE c IN (1, 3, 5)")
        assert result.column("s").to_pylist() == ["a", "c", "e"]

    def test_not_in_drops_nulls(self, db):
        # SQL: NULL NOT IN (...) is NULL, so the row is dropped.
        result = db.sql("SELECT s FROM t WHERE c NOT IN (1, 3)")
        assert result.column("s").to_pylist() == ["b", "e"]

    def test_between_inclusive(self, db):
        result = db.sql("SELECT s FROM t WHERE c BETWEEN 2 AND 3")
        assert result.column("s").to_pylist() == ["b", "c"]

    def test_not_between(self, db):
        result = db.sql("SELECT s FROM t WHERE c NOT BETWEEN 2 AND 4")
        assert result.column("s").to_pylist() == ["a", "e"]

    def test_string_in(self, db):
        result = db.sql("SELECT c FROM t WHERE s IN ('a', 'd')")
        assert result.column("c").to_pylist() == [1, None]

    def test_in_inside_having(self, db):
        result = db.sql(
            "SELECT c, COUNT(*) AS n FROM t GROUP BY c "
            "HAVING COUNT(*) IN (1, 2)"
        )
        assert result.row_count == 5


class TestInListExpression:
    def test_evaluate(self):
        schema = Schema([Field("v", DataType.INT64)])
        batch = RecordBatch(
            schema,
            {"v": ColumnVector.from_pylist(DataType.INT64, [1, 2, None])},
        )
        result = InList(ColumnRef("v"), (1, 5)).evaluate(batch)
        assert result.to_pylist() == [True, False, None]
        negated = InList(ColumnRef("v"), (1, 5), negated=True).evaluate(batch)
        assert negated.to_pylist() == [False, True, None]

    def test_str(self):
        rendered = str(InList(ColumnRef("v"), (1, "x"), negated=True))
        assert rendered == "(v NOT IN (1, 'x'))"
