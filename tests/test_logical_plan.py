"""Tests for logical plan nodes: schemas, children, explain rendering."""

import pytest

from repro.core.patch_index import PatchIndex
from repro.errors import PlanError
from repro.exec.expressions import ColumnRef, Comparison, Literal
from repro.exec.operators.aggregate import AggregateSpec
from repro.exec.operators.sort import SortKey
from repro.plan import logical as lp
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType


@pytest.fixture
def table() -> Table:
    return Table.from_pydict(
        "t",
        Schema([Field("a", DataType.INT64), Field("b", DataType.STRING)]),
        {"a": [1, 2, 2], "b": ["x", "y", "z"]},
    )


class TestSchemas:
    def test_scan_schema(self, table):
        assert lp.LogicalScan(table).schema.names == ("a", "b")
        assert lp.LogicalScan(table, ("b",)).schema.names == ("b",)
        assert lp.LogicalScan(table, with_tid=True).schema.names == (
            "a",
            "b",
            "tid",
        )

    def test_filter_project_schema(self, table):
        scan = lp.LogicalScan(table)
        filtered = lp.LogicalFilter(
            scan, Comparison(">", ColumnRef("a"), Literal(0))
        )
        assert filtered.schema == scan.schema
        project = lp.LogicalProject(filtered, (("renamed", ColumnRef("a")),))
        assert project.schema.names == ("renamed",)

    def test_aggregate_schema(self, table):
        plan = lp.LogicalAggregate(
            lp.LogicalScan(table),
            ("b",),
            (AggregateSpec("count_star", None, "n"),),
        )
        assert plan.schema.names == ("b", "n")
        assert plan.schema.field("n").dtype == DataType.INT64

    def test_join_schema_and_outer_nullability(self, table):
        other = Table.from_pydict(
            "u", Schema([Field("k", DataType.INT64)]), {"k": [1]}
        )
        inner = lp.LogicalJoin(
            lp.LogicalScan(table), lp.LogicalScan(other), "a", "k"
        )
        assert inner.schema.names == ("a", "b", "k")
        outer = lp.LogicalJoin(
            lp.LogicalScan(table), lp.LogicalScan(other), "a", "k", "left_outer"
        )
        assert outer.schema.field("k").nullable

    def test_union_and_merge_union(self, table):
        scan = lp.LogicalScan(table, ("a",))
        union = lp.LogicalUnionAll((scan, scan))
        assert union.schema.names == ("a",)
        merge = lp.LogicalMergeUnion(scan, scan, (SortKey("a"),))
        assert merge.schema.names == ("a",)

    def test_patch_select_requires_scan_child(self, table):
        index = PatchIndex.create("pi", table, "a", "unique")
        filtered = lp.LogicalFilter(
            lp.LogicalScan(table), Comparison(">", ColumnRef("a"), Literal(0))
        )
        with pytest.raises(PlanError):
            lp.LogicalPatchSelect(filtered, index)


class TestWithChildren:
    def test_roundtrip_rebuild(self, table):
        scan = lp.LogicalScan(table)
        nodes = [
            lp.LogicalFilter(scan, Comparison(">", ColumnRef("a"), Literal(0))),
            lp.LogicalProject(scan, (("a", ColumnRef("a")),)),
            lp.LogicalDistinct(scan),
            lp.LogicalSort(scan, (SortKey("a"),)),
            lp.LogicalLimit(scan, 3, 1),
            lp.LogicalAggregate(
                scan, (), (AggregateSpec("count_star", None, "n"),)
            ),
        ]
        for node in nodes:
            rebuilt = node.with_children(node.children())
            assert type(rebuilt) is type(node)
            assert rebuilt.schema == node.schema

    def test_arity_checked(self, table):
        scan = lp.LogicalScan(table)
        node = lp.LogicalDistinct(scan)
        with pytest.raises(PlanError):
            node.with_children([scan, scan])
        with pytest.raises(PlanError):
            scan.with_children([scan])


class TestExplain:
    def test_explain_renders_tree(self, table):
        plan = lp.LogicalLimit(
            lp.LogicalSort(
                lp.LogicalScan(table, ("a",)), (SortKey("a", False),)
            ),
            5,
        )
        text = plan.explain()
        lines = text.splitlines()
        assert lines[0].startswith("Limit(5")
        assert lines[1].strip().startswith("Sort(a DESC")
        assert lines[2].strip().startswith("Scan(t")
