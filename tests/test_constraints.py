"""Unit tests for the NUC/NSC validators (the test suite's own oracle
is itself tested here against hand-worked examples)."""

import numpy as np
import pytest

from repro.core.constraints import (
    ConstraintKind,
    check_nsc,
    check_nuc,
    exception_rate,
    values_are_sorted,
)
from repro.storage.column import ColumnVector
from repro.types import DataType


def col(items):
    return ColumnVector.from_pylist(DataType.INT64, items)


class TestConstraintKind:
    def test_from_name(self):
        assert ConstraintKind.from_name("UNIQUE") == ConstraintKind.UNIQUE
        assert ConstraintKind.from_name(" sorted ") == ConstraintKind.SORTED

    def test_unknown(self):
        with pytest.raises(ValueError):
            ConstraintKind.from_name("primary")


class TestExceptionRate:
    def test_basic(self):
        assert exception_rate(5, 100) == 0.05

    def test_empty_relation(self):
        assert exception_rate(0, 0) == 0.0


class TestCheckNuc:
    def test_valid_patch_set(self):
        # values 3 and 6 duplicated: all four occurrences must be patches.
        column = col([1, 3, 4, 3, 2, 6, 7, 6])
        assert check_nuc(column, np.array([1, 3, 5, 7]))

    def test_nuc1_violation(self):
        column = col([1, 3, 3])
        # Keeping both 3s violates uniqueness.
        assert not check_nuc(column, np.array([0]))

    def test_nuc2_violation(self):
        column = col([1, 3, 3])
        # Excluding only one occurrence: kept {1,3} intersects patches {3}.
        assert not check_nuc(column, np.array([2]))

    def test_nuc3_threshold(self):
        column = col([1, 3, 3, 4])
        patches = np.array([1, 2])
        assert check_nuc(column, patches, threshold=0.5)
        assert not check_nuc(column, patches, threshold=0.4)

    def test_nulls_must_be_patches(self):
        column = col([1, None, 3])
        assert not check_nuc(column, np.array([], dtype=np.int64))
        assert check_nuc(column, np.array([1]))

    def test_empty_patches_on_unique(self):
        assert check_nuc(col([1, 2, 3]), np.array([], dtype=np.int64))


class TestCheckNsc:
    def test_valid_patch_set(self):
        column = col([1, 3, 4, 3, 2, 6, 7, 6])
        assert check_nsc(column, np.array([2, 4, 7]))
        assert check_nsc(column, np.array([3, 4, 7]))

    def test_invalid_patch_set(self):
        column = col([1, 3, 4, 3, 2, 6, 7, 6])
        assert not check_nsc(column, np.array([4, 7]))

    def test_threshold(self):
        column = col([2, 1])
        assert check_nsc(column, np.array([0]), threshold=0.5)
        assert not check_nsc(column, np.array([0]), threshold=0.4)

    def test_descending(self):
        column = col([9, 7, 8, 5])
        assert check_nsc(column, np.array([2]), ascending=False)
        assert not check_nsc(column, np.array([], dtype=np.int64), ascending=False)

    def test_strict(self):
        column = col([1, 2, 2, 3])
        assert check_nsc(column, np.array([], dtype=np.int64), strict=False)
        assert not check_nsc(column, np.array([], dtype=np.int64), strict=True)
        assert check_nsc(column, np.array([2]), strict=True)

    def test_nulls_must_be_patches(self):
        column = col([1, None, 3])
        assert not check_nsc(column, np.array([], dtype=np.int64))
        assert check_nsc(column, np.array([1]))


class TestValuesAreSorted:
    def test_numeric(self):
        assert values_are_sorted(np.array([1, 2, 2, 3]))
        assert not values_are_sorted(np.array([1, 2, 2, 3]), strict=True)
        assert values_are_sorted(np.array([3, 2, 1]), ascending=False)
        assert values_are_sorted(np.array([3, 2, 1]), ascending=False, strict=True)

    def test_object(self):
        values = np.array(["a", "b", "b"], dtype=object)
        assert values_are_sorted(values)
        assert not values_are_sorted(values, strict=True)
        assert values_are_sorted(values[::-1], ascending=False)

    def test_trivial(self):
        assert values_are_sorted(np.array([], dtype=np.int64))
        assert values_are_sorted(np.array([7], dtype=np.int64), strict=True)
