"""Unit tests for the columnar segment file format."""

import datetime

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.column import ColumnVector
from repro.storage.segment import read_segment, write_segment
from repro.types import DataType


def roundtrip(tmp_path, dtype, items, *, mmap=False, block_size=4096):
    column = ColumnVector.from_pylist(dtype, items)
    path = tmp_path / "col.seg"
    written = write_segment(path, column, block_size, sync=False)
    assert written == path.stat().st_size
    loaded, stats = read_segment(path, mmap=mmap)
    assert loaded.dtype == dtype
    assert loaded.to_pylist() == column.to_pylist()
    return loaded, stats


class TestRoundtrip:
    def test_int64(self, tmp_path):
        roundtrip(tmp_path, DataType.INT64, [1, -5, 2**40, 0])

    def test_float64(self, tmp_path):
        roundtrip(tmp_path, DataType.FLOAT64, [1.5, -0.25, 1e300])

    def test_bool(self, tmp_path):
        roundtrip(tmp_path, DataType.BOOL, [True, False, True])

    def test_date(self, tmp_path):
        roundtrip(
            tmp_path,
            DataType.DATE,
            [datetime.date(2020, 1, 1), datetime.date(1969, 12, 31)],
        )

    def test_strings_including_unicode(self, tmp_path):
        roundtrip(
            tmp_path,
            DataType.STRING,
            ["plain", "", "naïve — ünïcødé", "日本語", "a" * 1000],
        )

    def test_nulls(self, tmp_path):
        loaded, __ = roundtrip(
            tmp_path, DataType.INT64, [1, None, 3, None, 5]
        )
        assert loaded.null_count() == 2

    def test_string_nulls_distinct_from_empty(self, tmp_path):
        loaded, __ = roundtrip(tmp_path, DataType.STRING, ["", None, "x"])
        assert loaded.to_pylist() == ["", None, "x"]

    def test_empty_column(self, tmp_path):
        loaded, stats = roundtrip(tmp_path, DataType.INT64, [])
        assert len(loaded) == 0
        assert stats == []

    def test_all_null_column(self, tmp_path):
        loaded, stats = roundtrip(tmp_path, DataType.FLOAT64, [None, None])
        assert loaded.null_count() == 2
        assert stats[0].minimum is None


class TestBlockStats:
    def test_stats_match_recomputation(self, tmp_path):
        from repro.storage.blocks import compute_block_stats

        items = list(range(100, 0, -1))
        column = ColumnVector.from_pylist(DataType.INT64, items)
        path = tmp_path / "col.seg"
        write_segment(path, column, block_size=16, sync=False)
        __, stats = read_segment(path)
        assert stats == compute_block_stats(column, 16)

    def test_stats_usable_for_pruning(self, tmp_path):
        from repro.storage.blocks import prune_blocks

        column = ColumnVector.from_pylist(DataType.INT64, list(range(64)))
        path = tmp_path / "col.seg"
        write_segment(path, column, block_size=16, sync=False)
        __, stats = read_segment(path)
        assert prune_blocks(stats, ">", 47) == [(48, 64)]


class TestMmap:
    def test_mmap_matches_eager(self, tmp_path):
        eager, __ = roundtrip(tmp_path, DataType.INT64, [3, 1, 2], mmap=False)
        mapped, __ = roundtrip(tmp_path, DataType.INT64, [3, 1, 2], mmap=True)
        assert isinstance(mapped.values, np.memmap)
        assert not mapped.values.flags.writeable
        np.testing.assert_array_equal(np.asarray(mapped.values), eager.values)

    def test_mmap_strings_fall_back_to_materialized(self, tmp_path):
        loaded, __ = roundtrip(tmp_path, DataType.STRING, ["a", "b"], mmap=True)
        assert not isinstance(loaded.values, np.memmap)


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "col.seg"
        path.write_bytes(b"NOTSEG\n{}\n")
        with pytest.raises(StorageError):
            read_segment(path)

    def test_corrupt_header(self, tmp_path):
        path = tmp_path / "col.seg"
        path.write_bytes(b"RSEG1\nnot-json\n")
        with pytest.raises(StorageError):
            read_segment(path)

    def test_truncated_values(self, tmp_path):
        column = ColumnVector.from_pylist(DataType.INT64, [1, 2, 3])
        path = tmp_path / "col.seg"
        write_segment(path, column, sync=False)
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])
        with pytest.raises((StorageError, ValueError)):
            read_segment(path)

    def test_no_tmp_file_left_behind(self, tmp_path):
        column = ColumnVector.from_pylist(DataType.INT64, [1])
        write_segment(tmp_path / "col.seg", column, sync=False)
        assert [entry.name for entry in tmp_path.iterdir()] == ["col.seg"]
