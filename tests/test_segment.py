"""Unit tests for the columnar segment file format (RSEG1 + RSEG2)."""

import datetime

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.column import ColumnVector
from repro.storage.segment import (
    open_segment,
    read_segment,
    write_segment,
    write_segment_v1,
)
from repro.types import DataType


def roundtrip(tmp_path, dtype, items, *, mmap=False, block_size=4096):
    column = ColumnVector.from_pylist(dtype, items)
    path = tmp_path / "col.seg"
    info = write_segment(path, column, block_size, sync=False)
    assert info.bytes_written == path.stat().st_size
    assert info.rows == len(items)
    loaded, stats = read_segment(path, mmap=mmap)
    assert loaded.dtype == dtype
    assert loaded.to_pylist() == column.to_pylist()
    return loaded, stats


class TestRoundtrip:
    def test_int64(self, tmp_path):
        roundtrip(tmp_path, DataType.INT64, [1, -5, 2**40, 0])

    def test_float64(self, tmp_path):
        roundtrip(tmp_path, DataType.FLOAT64, [1.5, -0.25, 1e300])

    def test_bool(self, tmp_path):
        roundtrip(tmp_path, DataType.BOOL, [True, False, True])

    def test_date(self, tmp_path):
        roundtrip(
            tmp_path,
            DataType.DATE,
            [datetime.date(2020, 1, 1), datetime.date(1969, 12, 31)],
        )

    def test_strings_including_unicode(self, tmp_path):
        roundtrip(
            tmp_path,
            DataType.STRING,
            ["plain", "", "naïve — ünïcødé", "日本語", "a" * 1000],
        )

    def test_nulls(self, tmp_path):
        loaded, __ = roundtrip(
            tmp_path, DataType.INT64, [1, None, 3, None, 5]
        )
        assert loaded.null_count() == 2

    def test_string_nulls_distinct_from_empty(self, tmp_path):
        loaded, __ = roundtrip(tmp_path, DataType.STRING, ["", None, "x"])
        assert loaded.to_pylist() == ["", None, "x"]

    def test_empty_column(self, tmp_path):
        loaded, stats = roundtrip(tmp_path, DataType.INT64, [])
        assert len(loaded) == 0
        assert stats == []

    def test_all_null_column(self, tmp_path):
        loaded, stats = roundtrip(tmp_path, DataType.FLOAT64, [None, None])
        assert loaded.null_count() == 2
        assert stats[0].minimum is None

    def test_extreme_int64_falls_back_to_raw(self, tmp_path):
        # The full int64 span overflows zig-zag deltas; the picker must
        # detect that and keep the block raw rather than corrupt it.
        roundtrip(tmp_path, DataType.INT64, [-(2**63), 2**63 - 1, 0, -1])


class TestEncodingPicker:
    def write(self, tmp_path, dtype, items, *, block_size=4096, **kwargs):
        column = ColumnVector.from_pylist(dtype, items)
        path = tmp_path / "col.seg"
        info = write_segment(path, column, block_size, sync=False, **kwargs)
        loaded, __ = read_segment(path)
        assert loaded.to_pylist() == column.to_pylist()
        return info, path

    def test_sorted_ints_use_for(self, tmp_path):
        info, __ = self.write(tmp_path, DataType.INT64, list(range(4096)))
        assert info.encodings == {"for": 1}
        assert info.payload_bytes < info.raw_payload_bytes
        assert info.encoded_ratio < 0.25

    def test_constant_block_uses_rle(self, tmp_path):
        info, __ = self.write(tmp_path, DataType.INT64, [7] * 1000)
        assert info.encodings == {"rle": 1}
        assert info.payload_bytes < 100

    def test_patch_rowids_enable_pfor(self, tmp_path):
        # Nearly sorted: a handful of out-of-order outliers whose rowids
        # come from the PatchIndex; pfor stores them verbatim and packs
        # the kept (sorted) values at the clean-column rate.
        items = [i * 10 for i in range(4096)]
        patch_rowids = np.array([100, 2000, 3999], dtype=np.int64)
        for rowid in patch_rowids:
            items[rowid] = 10**15 + int(rowid)
        info, __ = self.write(
            tmp_path,
            DataType.INT64,
            items,
            patch_rowids=patch_rowids,
        )
        assert info.encodings.get("pfor", 0) >= 1
        assert info.encoded_ratio < 0.25

    def test_low_cardinality_strings_use_dict(self, tmp_path):
        items = ["alpha", "beta", "gamma"] * 500
        info, path = self.write(tmp_path, DataType.STRING, items)
        assert info.encodings == {"dict": 1}
        reader = open_segment(path)
        assert reader.encodings == ["dict"]
        reader.close()

    def test_high_cardinality_strings_stay_raw(self, tmp_path):
        items = [f"unique-value-{i:08d}" for i in range(500)]
        info, __ = self.write(tmp_path, DataType.STRING, items)
        assert info.encodings == {"raw": 1}

    def test_raw_mode_forces_raw(self, tmp_path):
        info, __ = self.write(
            tmp_path, DataType.INT64, list(range(1000)), encoding="raw"
        )
        assert info.encodings == {"raw": 1}
        assert info.encoded_ratio == 1.0

    def test_unknown_encoding_mode_rejected(self, tmp_path):
        column = ColumnVector.from_pylist(DataType.INT64, [1])
        with pytest.raises(StorageError):
            write_segment(
                tmp_path / "col.seg", column, sync=False, encoding="zstd"
            )

    def test_floats_stay_raw(self, tmp_path):
        info, __ = self.write(
            tmp_path, DataType.FLOAT64, [float(i) for i in range(100)]
        )
        assert info.encodings == {"raw": 1}


class TestBlockReader:
    def test_decode_block_matches_slice(self, tmp_path):
        items = list(range(100)) + [None, 5, 5, 5] + list(range(28))
        column = ColumnVector.from_pylist(DataType.INT64, items)
        path = tmp_path / "col.seg"
        write_segment(path, column, block_size=16, sync=False)
        reader = open_segment(path)
        assert reader.version == 2
        for index, block in enumerate(reader.stats):
            decoded = reader.decode_block(index)
            expected = column.slice(block.start, block.stop)
            assert decoded.to_pylist() == expected.to_pylist()
        reader.close()

    def test_block_payload_bytes_sum_to_payload(self, tmp_path):
        column = ColumnVector.from_pylist(DataType.INT64, list(range(64)))
        path = tmp_path / "col.seg"
        info = write_segment(path, column, block_size=16, sync=False)
        reader = open_segment(path)
        total = sum(
            reader.block_payload_bytes(i) for i in range(reader.block_count)
        )
        assert total == info.payload_bytes
        reader.close()

    def test_mmap_reader_decodes_identically(self, tmp_path):
        items = [i // 3 for i in range(200)]
        column = ColumnVector.from_pylist(DataType.INT64, items)
        path = tmp_path / "col.seg"
        write_segment(path, column, block_size=32, sync=False)
        eager = open_segment(path, mmap=False)
        mapped = open_segment(path, mmap=True)
        for index in range(eager.block_count):
            np.testing.assert_array_equal(
                eager.decode_block(index).values,
                mapped.decode_block(index).values,
            )
        eager.close()
        mapped.close()


class TestBlockStats:
    def test_stats_match_recomputation(self, tmp_path):
        from repro.storage.blocks import compute_block_stats

        items = list(range(100, 0, -1))
        column = ColumnVector.from_pylist(DataType.INT64, items)
        path = tmp_path / "col.seg"
        write_segment(path, column, block_size=16, sync=False)
        __, stats = read_segment(path)
        assert stats == compute_block_stats(column, 16)

    def test_stats_usable_for_pruning(self, tmp_path):
        from repro.storage.blocks import prune_blocks

        column = ColumnVector.from_pylist(DataType.INT64, list(range(64)))
        path = tmp_path / "col.seg"
        write_segment(path, column, block_size=16, sync=False)
        __, stats = read_segment(path)
        assert prune_blocks(stats, ">", 47) == [(48, 64)]


class TestMmap:
    def test_mmap_matches_eager(self, tmp_path):
        eager, __ = roundtrip(tmp_path, DataType.INT64, [3, 1, 2], mmap=False)
        mapped, __ = roundtrip(tmp_path, DataType.INT64, [3, 1, 2], mmap=True)
        np.testing.assert_array_equal(
            np.asarray(mapped.values), np.asarray(eager.values)
        )

    def test_mmap_strings_fall_back_to_materialized(self, tmp_path):
        loaded, __ = roundtrip(tmp_path, DataType.STRING, ["a", "b"], mmap=True)
        assert not isinstance(loaded.values, np.memmap)


class TestLegacyV1:
    def roundtrip_v1(self, tmp_path, dtype, items, *, mmap=False):
        column = ColumnVector.from_pylist(dtype, items)
        path = tmp_path / "col.seg"
        written = write_segment_v1(path, column, sync=False)
        assert written == path.stat().st_size
        assert path.read_bytes().startswith(b"RSEG1\n")
        loaded, stats = read_segment(path, mmap=mmap)
        assert loaded.to_pylist() == column.to_pylist()
        return loaded, stats

    def test_v1_int_roundtrip(self, tmp_path):
        self.roundtrip_v1(tmp_path, DataType.INT64, [1, -5, 2**40, 0])

    def test_v1_string_nulls(self, tmp_path):
        loaded, __ = self.roundtrip_v1(
            tmp_path, DataType.STRING, ["", None, "x"]
        )
        assert loaded.to_pylist() == ["", None, "x"]

    def test_v1_mmap_zero_copy(self, tmp_path):
        # The legacy fixed-width buffer memory-maps directly — the one
        # zero-copy path RSEG2's per-block decode intentionally gave up.
        mapped, __ = self.roundtrip_v1(
            tmp_path, DataType.INT64, [3, 1, 2], mmap=True
        )
        assert isinstance(mapped.values, np.memmap)
        assert not mapped.values.flags.writeable

    def test_v1_block_reader_interface(self, tmp_path):
        column = ColumnVector.from_pylist(DataType.INT64, list(range(64)))
        path = tmp_path / "col.seg"
        write_segment_v1(path, column, block_size=16, sync=False)
        reader = open_segment(path)
        assert reader.version == 1
        assert reader.encodings == ["raw"] * 4
        decoded = reader.decode_block(2)
        assert decoded.to_pylist() == list(range(32, 48))
        assert reader.block_payload_bytes(0) == 16 * 8
        reader.close()


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "col.seg"
        path.write_bytes(b"NOTSEG\n{}\n")
        with pytest.raises(StorageError):
            read_segment(path)

    def test_corrupt_header(self, tmp_path):
        path = tmp_path / "col.seg"
        path.write_bytes(b"RSEG1\nnot-json\n")
        with pytest.raises(StorageError):
            read_segment(path)

    def test_corrupt_v2_header(self, tmp_path):
        path = tmp_path / "col.seg"
        path.write_bytes(b"RSEG2\nnot-json\n")
        with pytest.raises(StorageError):
            read_segment(path)

    def test_truncated_values(self, tmp_path):
        column = ColumnVector.from_pylist(DataType.INT64, [1, 2, 3])
        path = tmp_path / "col.seg"
        write_segment(path, column, sync=False, encoding="raw")
        raw = path.read_bytes()
        path.write_bytes(raw[:-10])
        with pytest.raises((StorageError, ValueError)):
            read_segment(path)

    def test_unknown_block_encoding(self, tmp_path):
        column = ColumnVector.from_pylist(DataType.INT64, [1, 2, 3])
        path = tmp_path / "col.seg"
        write_segment(path, column, sync=False)
        raw = path.read_bytes()
        head, sep, tail = raw.partition(b'"for"')
        if not sep:
            head, sep, tail = raw.partition(b'"raw"')
        path.write_bytes(head + b'"xxx"' + tail)
        with pytest.raises(StorageError):
            read_segment(path)

    def test_no_tmp_file_left_behind(self, tmp_path):
        column = ColumnVector.from_pylist(DataType.INT64, [1])
        write_segment(tmp_path / "col.seg", column, sync=False)
        assert [entry.name for entry in tmp_path.iterdir()] == ["col.seg"]
