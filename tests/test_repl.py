"""Tests for the interactive shell (python -m repro)."""

import io

from repro.__main__ import run_shell
from repro.storage.database import Database


def drive(lines):
    database = Database()
    output = io.StringIO()
    code = run_shell(database, input_stream=iter(lines), output=output)
    return code, output.getvalue(), database


class TestShell:
    def test_ddl_query_cycle(self):
        code, text, db = drive(
            [
                "CREATE TABLE t (c BIGINT);",
                "INSERT INTO t VALUES (1), (2), (2);",
                "CREATE PATCHINDEX pi ON t(c) TYPE UNIQUE;",
                "SELECT COUNT(DISTINCT c) AS n FROM t;",
                "\\q",
            ]
        )
        assert code == 0
        assert "2" in text  # the count
        assert db.catalog.has_index("pi")

    def test_multiline_statement(self):
        code, text, __ = drive(
            [
                "CREATE TABLE t (c BIGINT);",
                "SELECT c",
                "FROM t;",
            ]
        )
        assert code == 0
        assert "c" in text

    def test_describe_command(self):
        code, text, __ = drive(
            [
                "CREATE TABLE t (c BIGINT);",
                "\\d",
            ]
        )
        assert "table t" in text

    def test_error_does_not_kill_shell(self):
        code, text, __ = drive(
            [
                "SELECT * FROM missing;",
                "CREATE TABLE t (c BIGINT);",
                "\\d",
            ]
        )
        assert code == 0
        assert "error:" in text
        assert "table t" in text

    def test_eof_exits(self):
        code, __, __ = drive([])
        assert code == 0

    def test_blank_lines_ignored(self):
        code, __, __ = drive(["", "   ", "\\q"])
        assert code == 0


class TestCheckpoint:
    def test_checkpoint_statement(self):
        code, text, __ = drive(
            [
                "CREATE TABLE t (c BIGINT);",
                "INSERT INTO t VALUES (1), (2);",
                "CHECKPOINT;",
            ]
        )
        assert code == 0
        assert "checkpoint at lsn" in text

    def test_checkpoint_backslash_command(self):
        code, text, __ = drive(
            [
                "CREATE TABLE t (c BIGINT);",
                "\\checkpoint",
            ]
        )
        assert code == 0
        assert "checkpoint at lsn" in text

    def test_durable_checkpoint_flushes_segments(self, tmp_path):
        database = Database(path=tmp_path / "db")
        output = io.StringIO()
        code = run_shell(
            database,
            input_stream=iter(
                [
                    "CREATE TABLE t (c BIGINT);",
                    "INSERT INTO t VALUES (1), (2);",
                    "\\checkpoint",
                ]
            ),
            output=output,
        )
        assert code == 0
        assert "1 segments" in output.getvalue()
        assert (tmp_path / "db" / "manifest.json").exists()


class TestCacheCommand:
    def test_cache_without_cache(self):
        code, text, __ = drive(["\\cache", "\\q"])
        assert code == 0
        assert "(no cache" in text

    def test_cache_on_durable_database(self, tmp_path):
        database = Database(path=tmp_path / "db")
        output = io.StringIO()
        code = run_shell(
            database,
            input_stream=iter(
                [
                    "CREATE TABLE t (c BIGINT);",
                    "INSERT INTO t VALUES (1), (2), (3);",
                    "\\checkpoint",
                    "SELECT SUM(c) AS s FROM t;",
                    "SELECT SUM(c) AS s FROM t;",
                    "\\cache",
                ]
            ),
            output=output,
        )
        assert code == 0
        text = output.getvalue()
        assert "block cache:" in text
        assert "hit_ratio=" in text
        assert "oversized_skips=" in text
        database.close()
