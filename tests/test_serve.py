"""The network server: wire protocol, routing, and failure modes."""

import asyncio
import socket
import struct
import threading

import pytest

import repro
from repro.errors import (
    BindError,
    ConnectionClosedError,
    ProtocolError,
    ReproError,
)
from repro.exec.result import QueryResult
from repro.serve import (
    AsyncReproClient,
    MAX_FRAME_BYTES,
    ServerClient,
    ServerThread,
)
from repro.serve.client import parse_uri
from repro.serve.protocol import (
    decode_body,
    encode_frame,
    error_from_wire,
    error_to_wire,
)


@pytest.fixture
def durable(tmp_path):
    db = repro.connect(tmp_path / "data", parallelism=1)
    db.sql("CREATE TABLE t (c BIGINT, v VARCHAR(5))")
    db.sql("INSERT INTO t VALUES (1, 'a'), (2, 'b'), (3, 'c')")
    return db


@pytest.fixture
def server(durable):
    with ServerThread(durable) as handle:
        yield handle


@pytest.fixture
def client(server):
    with ServerClient(server.host, server.port) as handle:
        yield handle


def _raw_connection(server) -> socket.socket:
    return socket.create_connection((server.host, server.port), timeout=10)


def _recv_frame(sock: socket.socket) -> dict | None:
    prefix = b""
    while len(prefix) < 4:
        chunk = sock.recv(4 - len(prefix))
        if not chunk:
            return None
        prefix += chunk
    (length,) = struct.unpack(">I", prefix)
    body = b""
    while len(body) < length:
        chunk = sock.recv(length - len(body))
        if not chunk:
            return None
        body += chunk
    return decode_body(body)


class TestWireHelpers:
    def test_parse_uri_with_port(self):
        assert parse_uri("repro://db.internal:9000") == ("db.internal", 9000)

    def test_parse_uri_default_port(self):
        assert parse_uri("repro://localhost") == ("localhost", 7376)

    def test_parse_uri_rejects_other_schemes(self):
        with pytest.raises(ProtocolError):
            parse_uri("http://localhost:7376")

    def test_parse_uri_rejects_bad_port(self):
        with pytest.raises(ProtocolError, match="invalid port"):
            parse_uri("repro://localhost:grpc")

    def test_error_round_trip_preserves_type(self):
        wire = error_to_wire(BindError("no such column q"))
        error = error_from_wire(wire)
        assert isinstance(error, BindError)
        assert "no such column q" in str(error)

    def test_unknown_error_type_degrades_to_repro_error(self):
        error = error_from_wire(
            {"error": {"type": "NoSuchError", "message": "boom"}}
        )
        assert type(error) is ReproError
        assert "boom" in str(error)


class TestServerRoundTrip:
    def test_hello_reports_engine(self, client):
        assert client.server_info["server"] == "repro"
        assert client.server_info["snapshot_reads"] is True
        assert "durable" in client.server_info["engine"]

    def test_select_over_the_wire(self, client):
        result = client.sql("SELECT c, v FROM t ORDER BY c")
        assert isinstance(result, QueryResult)
        assert result.column_names == ("c", "v")
        assert result.rows() == [(1, "a"), (2, "b"), (3, "c")]
        assert result.fetchone() == (1, "a")

    def test_write_then_read_back(self, client):
        message = client.sql("INSERT INTO t VALUES (4, 'd')")
        assert "1 rows inserted" in message.scalar()
        assert client.sql("SELECT COUNT(*) AS n FROM t").scalar() == 4

    def test_checkpoint_over_the_wire(self, client):
        info = client.checkpoint()
        assert info["engine"] == "durable"
        assert info["lsn"] >= 1

    def test_checkpoint_statement_routes_to_writer(self, client):
        result = client.sql("CHECKPOINT")
        assert isinstance(result, QueryResult)

    def test_explain_over_the_wire(self, client):
        assert "logical plan" in client.explain("SELECT c FROM t")

    def test_profile_travels_as_text(self, client):
        result = client.sql("SELECT c FROM t", profile=True)
        assert result.profile is not None
        assert "TableScan" in result.profile.to_text()

    def test_describe_metrics_cache_stats_ping(self, client):
        assert "t" in client.describe()
        metrics = client.metrics()
        assert "server.requests" in metrics.to_text()
        assert metrics.to_json().startswith("{")
        assert client.cache_stats() is not None
        assert client.ping() is True

    def test_set_parallelism_knob(self, client):
        client.parallelism = 2
        assert client.parallelism == 2
        assert client.sql("SELECT COUNT(*) AS n FROM t").scalar() == 3

    def test_set_unknown_knob_is_protocol_error(self, client):
        with pytest.raises(ProtocolError, match="unknown session knob"):
            client.set("fsync", False)

    def test_typed_errors_propagate(self, client):
        with pytest.raises(BindError, match="nope"):
            client.sql("SELECT nope FROM t")
        # SqlSyntaxError has a structured constructor, so it degrades
        # to a plain ReproError that names the original type.
        with pytest.raises(ReproError, match="SqlSyntaxError"):
            client.sql("SELEC c FROM t")
        # The connection survives an error response.
        assert client.ping() is True

    def test_connection_error_does_not_poison_session(self, client):
        with pytest.raises(ReproError):
            client.sql("SELECT c FROM missing_table")
        assert client.sql("SELECT COUNT(*) AS n FROM t").scalar() == 3

    def test_close_is_idempotent_and_final(self, server):
        handle = ServerClient(server.host, server.port)
        handle.close()
        handle.close()
        with pytest.raises(ConnectionClosedError):
            handle.sql("SELECT c FROM t")

    def test_connect_uri_returns_server_client(self, server):
        client = repro.connect(server.uri)
        try:
            assert isinstance(client, ServerClient)
            assert client.sql("SELECT COUNT(*) AS n FROM t").scalar() == 3
        finally:
            client.close()

    def test_optimizer_options_rejected_client_side(self, client):
        with pytest.raises(ProtocolError, match="wire"):
            client.sql("SELECT c FROM t", optimizer_options=object())


class TestConcurrentClients:
    def test_parallel_writers_and_readers(self, server, durable):
        failures: list[BaseException] = []

        def worker(slot: int) -> None:
            try:
                with ServerClient(server.host, server.port) as client:
                    for i in range(10):
                        client.sql(
                            f"INSERT INTO t VALUES ({100 + slot * 10 + i}, 'w')"
                        )
                        count = client.sql(
                            "SELECT COUNT(*) AS n FROM t"
                        ).scalar()
                        assert count >= 3 + i + 1 - 1
            except BaseException as error:  # noqa: BLE001 - surfaced below
                failures.append(error)

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures
        assert durable.sql("SELECT COUNT(*) AS n FROM t").scalar() == 43
        # Group commit kicked in: batches were recorded by the writer loop.
        assert durable.obs.counter("server.write_batches").value >= 1
        assert durable.obs.counter("wal.group_commit.batches").value >= 1


class TestProtocolAbuse:
    def test_oversized_length_prefix_gets_error_then_hangup(self, server):
        with _raw_connection(server) as sock:
            sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
            response = _recv_frame(sock)
            assert response["error"]["type"] == "ProtocolError"
            assert _recv_frame(sock) is None  # server hung up

    def test_non_json_body_gets_error_then_hangup(self, server):
        with _raw_connection(server) as sock:
            body = b"\xff\xfe not json"
            sock.sendall(struct.pack(">I", len(body)) + body)
            response = _recv_frame(sock)
            assert response["error"]["type"] == "ProtocolError"
            assert _recv_frame(sock) is None

    def test_truncated_frame_gets_error_then_hangup(self, server):
        with _raw_connection(server) as sock:
            sock.sendall(struct.pack(">I", 100) + b'{"op": "ping"}')
            sock.shutdown(socket.SHUT_WR)
            response = _recv_frame(sock)
            assert response["error"]["type"] == "ProtocolError"

    def test_unknown_op_keeps_connection_open(self, server):
        with _raw_connection(server) as sock:
            sock.sendall(encode_frame({"op": "drop_everything"}))
            response = _recv_frame(sock)
            assert response["error"]["type"] == "ProtocolError"
            sock.sendall(encode_frame({"op": "ping"}))
            assert _recv_frame(sock) == {"ok": True}

    def test_sql_without_text_is_protocol_error(self, server):
        with _raw_connection(server) as sock:
            sock.sendall(encode_frame({"op": "sql", "text": 42}))
            response = _recv_frame(sock)
            assert response["error"]["type"] == "ProtocolError"

    def test_mid_query_disconnect_leaves_server_healthy(self, server):
        with _raw_connection(server) as sock:
            sock.sendall(encode_frame({"op": "sql", "text": "CHECKPOINT"}))
            # Vanish without reading the response.
        with ServerClient(server.host, server.port) as client:
            assert client.ping() is True
            assert client.sql("SELECT COUNT(*) AS n FROM t").scalar() == 3


class TestAsyncClient:
    def test_async_round_trip(self, server):
        async def scenario() -> None:
            async with await AsyncReproClient.connect(
                server.host, server.port
            ) as client:
                assert client.server_info["server"] == "repro"
                assert await client.ping() is True
                result = await client.sql("SELECT COUNT(*) AS n FROM t")
                assert result.scalar() == 3
                await client.sql("INSERT INTO t VALUES (9, 'z')")
                assert "logical plan" in await client.explain(
                    "SELECT c FROM t"
                )
                assert await client.set("profile", True) is True
                info = await client.checkpoint()
                assert info["engine"] == "durable"

        asyncio.run(scenario())

    def test_many_async_clients(self, server):
        async def one_client(slot: int) -> int:
            async with await AsyncReproClient.connect(
                server.host, server.port
            ) as client:
                total = 0
                for _ in range(5):
                    result = await client.sql("SELECT COUNT(*) AS n FROM t")
                    total += result.scalar()
                return total

        async def scenario() -> list[int]:
            return await asyncio.gather(*(one_client(i) for i in range(6)))

        totals = asyncio.run(scenario())
        assert totals == [15] * 6


class TestMemoryEngineServer:
    def test_reads_serialize_through_writer_queue(self):
        db = repro.connect()
        db.sql("CREATE TABLE t (c BIGINT)")
        db.sql("INSERT INTO t VALUES (1), (2)")
        with ServerThread(db) as server:
            with ServerClient(server.host, server.port) as client:
                assert client.server_info["snapshot_reads"] is False
                assert client.sql("SELECT COUNT(*) AS n FROM t").scalar() == 2
                client.sql("INSERT INTO t VALUES (3)")
                assert client.sql("SELECT COUNT(*) AS n FROM t").scalar() == 3


class TestServerLifecycle:
    def test_stop_then_client_sees_closed_connection(self, durable):
        server = ServerThread(durable).start()
        client = ServerClient(server.host, server.port)
        assert client.ping() is True
        server.stop()
        with pytest.raises(ConnectionClosedError):
            for _ in range(10):
                client.ping()
        client.close()

    def test_server_metrics_namespaces(self, server, durable):
        with ServerClient(server.host, server.port) as client:
            client.sql("SELECT COUNT(*) AS n FROM t")
        assert durable.obs.counter("server.connections.total").value >= 1
        assert durable.obs.counter("server.requests.sql").value >= 1
        assert durable.obs.counter("session.opened").value >= 1
