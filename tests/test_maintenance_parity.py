"""Cross-path parity fuzz: incremental maintenance vs rebuild oracle.

Random append/delete/update streams run through the incremental delta
layer on both engines; every checkpoint of the fuzz asserts three
independent implementations agree:

- the *live* incrementally-maintained index on a MemoryEngine database,
- the same stream on a DurableEngine database (WAL-logged data records
  plus ``patch_delta`` records),
- a *rebuild-from-scratch oracle*: a fresh database loaded with the
  final table contents whose index is discovered from data.

Patch sets are compared across the two live paths rowid-for-rowid (one
classifier, so they must match exactly), and against the oracle by
constraint validity and query results — the greedy incremental
classifier may keep more patches than a from-scratch discovery, but
never an invalid or query-visible set.

The crash half reopens the durable directory mid-stream and asserts
recovery *restores* indexes from the checkpointed patch sets plus delta
replay (``recovery.indexes_restored``), falling back to the paper's
rebuild-from-data path only when a delta is corrupt or missing
(``recovery.indexes_rebuilt``).
"""

import json
import random

import pytest

import repro
from repro.core.constraints import check_nsc, check_nuc

KINDS = ["unique", "sorted"]
SEEDS = [7, 23, 101]


def random_stream(seed, length=40):
    """A deterministic mixed mutation stream."""
    rng = random.Random(seed)
    stream = []
    for _ in range(length):
        roll = rng.random()
        if roll < 0.5:
            values = [rng.randrange(0, 50) for _ in range(rng.randrange(1, 4))]
            stream.append(("insert", values))
        elif roll < 0.75:
            stream.append(("delete", rng.randrange(0, 50)))
        else:
            stream.append(("update", rng.random(), rng.randrange(0, 50)))
    return stream


def apply_stream(db, stream):
    """Run one mutation stream against *db*'s table ``t``."""
    table = db.table("t")
    for op, *args in stream:
        if op == "insert":
            values = ", ".join(f"({v})" for v in args[0])
            db.sql(f"INSERT INTO t VALUES {values}")
        elif op == "delete":
            db.sql(f"DELETE FROM t WHERE c = {args[0]}")
        elif op == "update" and table.row_count:
            rowid = int(args[0] * table.row_count) % table.row_count
            table.update_rowid(rowid, "c", args[1])


def seed_values(seed):
    rng = random.Random(seed * 31 + 1)
    return [rng.randrange(0, 50) for _ in range(30)]


def setup(db, kind, seed):
    db.sql("CREATE TABLE t (c BIGINT)")
    values = ", ".join(f"({v})" for v in seed_values(seed))
    db.sql(f"INSERT INTO t VALUES {values}")
    db.sql(f"CREATE PATCHINDEX pi ON t(c) TYPE {kind.upper()}")


def assert_index_valid(db, kind):
    """The maintained patch set still proves its approximate constraint."""
    index = db.catalog.index("pi")
    column = db.table("t").read_column("c")
    rowids = index.rowids()
    if kind == "unique":
        if not check_nuc(column, rowids):
            raise AssertionError(
                f"NUC violated: values={column.to_pylist()}, "
                f"patches={rowids.tolist()}"
            )
    else:
        if not check_nsc(
            column, rowids, ascending=index.ascending, strict=index.strict
        ):
            raise AssertionError(
                f"NSC violated: values={column.to_pylist()}, "
                f"patches={rowids.tolist()}"
            )


def observable_state(db):
    """Everything a query can see through the index rewrites."""
    distinct = db.sql("SELECT COUNT(DISTINCT c) AS n FROM t").scalar()
    ordered = db.sql("SELECT c FROM t ORDER BY c").column("c").to_pylist()
    return distinct, ordered


def oracle_state(db):
    """Rebuild-from-scratch oracle over *db*'s final table contents."""
    values = db.table("t").read_column("c").to_pylist()
    oracle = repro.connect()
    oracle.sql("CREATE TABLE t (c BIGINT)")
    if values:
        rows = ", ".join("(NULL)" if v is None else f"({v})" for v in values)
        oracle.sql(f"INSERT INTO t VALUES {rows}")
    return oracle


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("seed", SEEDS)
class TestCrossEngineParity:
    def test_memory_and_durable_agree(self, tmp_path, kind, seed):
        stream = random_stream(seed)
        memory = repro.connect()
        durable = repro.connect(tmp_path / "data", parallelism=1)
        for db in (memory, durable):
            setup(db, kind, seed)
            apply_stream(db, stream)
        # One classifier drives both engines, so the maintained patch
        # sets must be identical rowid-for-rowid — not just equivalent.
        left = memory.catalog.index("pi").rowids().tolist()
        right = durable.catalog.index("pi").rowids().tolist()
        if left != right:
            raise AssertionError(f"patch sets diverged: {left} != {right}")
        for db in (memory, durable):
            assert_index_valid(db, kind)
        durable.close()

    def test_incremental_matches_rebuild_oracle(self, kind, seed):
        db = repro.connect()
        setup(db, kind, seed)
        apply_stream(db, random_stream(seed))
        oracle = oracle_state(db)
        oracle.sql(f"CREATE PATCHINDEX pi ON t(c) TYPE {kind.upper()}")
        if observable_state(db) != observable_state(oracle):
            raise AssertionError(
                f"incremental results diverged from oracle: "
                f"{observable_state(db)} != {observable_state(oracle)}"
            )
        # The greedy incremental classifier may keep more patches than
        # a fresh discovery, never fewer valid rows than required.
        assert_index_valid(db, kind)
        assert_index_valid(oracle, kind)


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("seed", SEEDS)
class TestCrashRecovery:
    def test_recovery_restores_without_rebuilding(self, tmp_path, kind, seed):
        path = tmp_path / "data"
        db = repro.connect(path, parallelism=1)
        setup(db, kind, seed)
        # Checkpoint BEFORE the stream so the persisted patch sets plus
        # the WAL delta tail are the only way to restore the index.
        db.checkpoint()
        apply_stream(db, random_stream(seed))
        expected_rowids = db.catalog.index("pi").rowids().tolist()
        expected_state = observable_state(db)
        db.close()  # crash: no checkpoint after the stream

        recovered = repro.connect(path, parallelism=1)
        restored = recovered.obs.gauge("recovery.indexes_restored").value
        rebuilt = recovered.obs.gauge("recovery.indexes_rebuilt").value
        if (restored, rebuilt) != (1, 0):
            raise AssertionError(
                f"expected pure delta-replay recovery, got "
                f"restored={restored} rebuilt={rebuilt}"
            )
        replayed = recovered.obs.gauge(
            "recovery.delta_records_replayed"
        ).value
        if replayed <= 0:
            raise AssertionError("recovery replayed no patch deltas")
        assert recovered.catalog.index("pi").rowids().tolist() == (
            expected_rowids
        )
        assert observable_state(recovered) == expected_state
        assert_index_valid(recovered, kind)
        recovered.close()


def _corrupt_one_delta(path, mutate):
    """Rewrite the WAL, applying *mutate* to the last patch_delta line."""
    wal = path / "wal.jsonl"
    lines = wal.read_text(encoding="utf-8").splitlines()
    target = max(
        i
        for i, line in enumerate(lines)
        if json.loads(line)["kind"] == "patch_delta"
    )
    replacement = mutate(lines[target])
    lines[target:target + 1] = [replacement] if replacement else []
    wal.write_text(
        "".join(line + "\n" for line in lines), encoding="utf-8"
    )


class TestRecoveryFallback:
    def run_stream(self, path):
        db = repro.connect(path, parallelism=1)
        setup(db, "unique", 7)
        db.checkpoint()
        apply_stream(db, random_stream(7))
        state = observable_state(db)
        db.close()
        return state

    def reopen_and_check(self, path, expected_state):
        recovered = repro.connect(path, parallelism=1)
        restored = recovered.obs.gauge("recovery.indexes_restored").value
        rebuilt = recovered.obs.gauge("recovery.indexes_rebuilt").value
        if (restored, rebuilt) != (0, 1):
            raise AssertionError(
                f"expected rebuild-from-data fallback, got "
                f"restored={restored} rebuilt={rebuilt}"
            )
        # The fallback still reconstructs a correct index from data.
        assert observable_state(recovered) == expected_state
        assert_index_valid(recovered, "unique")
        recovered.close()

    def test_corrupt_checksum_falls_back_to_rebuild(self, tmp_path):
        path = tmp_path / "data"
        state = self.run_stream(path)

        def flip_rows(line):
            record = json.loads(line)
            record["payload"]["rows"] = record["payload"].get("rows", 0) + 1
            return json.dumps(record)

        _corrupt_one_delta(path, flip_rows)
        self.reopen_and_check(path, state)

    def test_missing_delta_falls_back_to_rebuild(self, tmp_path):
        path = tmp_path / "data"
        state = self.run_stream(path)
        _corrupt_one_delta(path, lambda line: None)
        self.reopen_and_check(path, state)
