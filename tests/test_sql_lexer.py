"""Unit tests for the SQL tokenizer."""

import pytest

from repro.errors import SqlSyntaxError
from repro.sql.lexer import tokenize


def kinds(text):
    return [(token.kind, token.value) for token in tokenize(text)[:-1]]


class TestTokens:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT select SeLeCt") == [("keyword", "select")] * 3

    def test_identifiers_normalized(self):
        assert kinds("Foo_Bar1") == [("identifier", "foo_bar1")]

    def test_quoted_identifier_preserves_case(self):
        assert kinds('"MiXeD"') == [("identifier", "MiXeD")]

    def test_numbers(self):
        assert kinds("1 2.5 1e3 2.5E-2") == [
            ("number", "1"),
            ("number", "2.5"),
            ("number", "1e3"),
            ("number", "2.5E-2"),
        ]

    def test_strings_with_escapes(self):
        assert kinds("'it''s'") == [("string", "it's")]

    def test_operators(self):
        assert [value for __, value in kinds("<= >= <> != = < > + - * /")] == [
            "<=",
            ">=",
            "<>",
            "!=",
            "=",
            "<",
            ">",
            "+",
            "-",
            "*",
            "/",
        ]

    def test_punctuation_and_qualified_names(self):
        assert kinds("t.c") == [
            ("identifier", "t"),
            ("punct", "."),
            ("identifier", "c"),
        ]

    def test_comments_skipped(self):
        assert kinds("select -- a comment\n 1") == [
            ("keyword", "select"),
            ("number", "1"),
        ]

    def test_eof_token(self):
        tokens = tokenize("x")
        assert tokens[-1].kind == "eof"


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_unterminated_quoted_identifier(self):
        with pytest.raises(SqlSyntaxError):
            tokenize('"oops')

    def test_bad_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("select @")
