"""Direct tests for the Partition storage unit."""

import numpy as np
import pytest

from repro.errors import SchemaError, StorageError
from repro.storage.column import ColumnVector
from repro.storage.partition import Partition
from repro.storage.schema import Field, Schema
from repro.types import DataType


def make_partition(values, base_rowid=0, block_size=4):
    schema = Schema([Field("x", DataType.INT64)])
    return Partition(
        0,
        schema,
        {"x": ColumnVector.from_pylist(DataType.INT64, values)},
        base_rowid=base_rowid,
        block_size=block_size,
    )


class TestConstruction:
    def test_basic(self):
        partition = make_partition([1, 2, 3], base_rowid=10)
        assert partition.row_count == 3
        assert partition.rowid_range == (10, 13)
        assert partition.rowids().tolist() == [10, 11, 12]

    def test_missing_column(self):
        schema = Schema([Field("x", DataType.INT64)])
        with pytest.raises(SchemaError):
            Partition(0, schema, {}, base_rowid=0)

    def test_type_mismatch(self):
        schema = Schema([Field("x", DataType.INT64)])
        with pytest.raises(SchemaError):
            Partition(
                0,
                schema,
                {"x": ColumnVector.from_pylist(DataType.STRING, ["a"])},
                base_rowid=0,
            )

    def test_unknown_column_lookup(self):
        partition = make_partition([1])
        with pytest.raises(SchemaError):
            partition.column("nope")


class TestBlockStats:
    def test_cached_and_invalidated_on_append(self):
        partition = make_partition([1, 2, 3, 4, 100, 200])
        first = partition.block_stats("x")
        assert first is partition.block_stats("x")  # cached
        assert first[0].maximum == 4
        partition.append({"x": ColumnVector.from_pylist(DataType.INT64, [7])})
        second = partition.block_stats("x")
        assert second is not first

    def test_scan_ranges_for_predicate(self):
        partition = make_partition(list(range(16)), block_size=4)
        assert partition.scan_ranges_for_predicate("x", ">=", 12) == [(12, 16)]
        assert partition.scan_ranges_for_predicate("x", "<", 4) == [(0, 4)]
        assert partition.scan_ranges_for_predicate("x", ">", 100) == []


class TestMutation:
    def test_append_length_mismatch(self):
        schema = Schema(
            [Field("x", DataType.INT64), Field("y", DataType.INT64)]
        )
        partition = Partition(
            0,
            schema,
            {
                "x": ColumnVector.from_pylist(DataType.INT64, [1]),
                "y": ColumnVector.from_pylist(DataType.INT64, [2]),
            },
            base_rowid=0,
        )
        with pytest.raises(StorageError):
            partition.append(
                {
                    "x": ColumnVector.from_pylist(DataType.INT64, [1]),
                    "y": ColumnVector.from_pylist(DataType.INT64, [1, 2]),
                }
            )

    def test_append_empty_noop(self):
        partition = make_partition([1])
        partition.append({"x": ColumnVector.empty(DataType.INT64)})
        assert partition.row_count == 1

    def test_replace_rows(self):
        partition = make_partition([1, 2, 3, 4])
        partition.replace_rows(np.array([True, False, True, False]))
        assert partition.column("x").to_pylist() == [1, 3]
        assert partition.row_count == 2

    def test_replace_rows_bad_mask(self):
        partition = make_partition([1, 2])
        with pytest.raises(StorageError):
            partition.replace_rows(np.array([True]))

    def test_project(self):
        partition = make_partition([1, 2])
        projected = partition.project(["x"])
        assert list(projected) == ["x"]
