"""Unit tests for the rewrite cost model."""

import pytest

from repro.core.cost_model import CostEstimate, CostModel


class TestEstimates:
    def test_distinct_low_rate_wins(self):
        model = CostModel()
        estimate = model.distinct(1_000_000, 1_000)
        assert estimate.use_patches
        assert estimate.speedup > 2

    def test_distinct_all_patches_loses(self):
        model = CostModel()
        estimate = model.distinct(1_000_000, 1_000_000)
        assert not estimate.use_patches

    def test_sort_low_rate_wins(self):
        model = CostModel()
        assert model.sort(1_000_000, 1_000).use_patches

    def test_sort_zero_patches(self):
        model = CostModel()
        estimate = model.sort(1_000_000, 0)
        assert estimate.use_patches
        assert estimate.patched_cost > 0  # scan overhead still counted

    def test_join_low_rate_wins(self):
        model = CostModel()
        assert model.join(1_000_000, 5_000, 73_000).use_patches

    def test_estimate_dispatch(self):
        model = CostModel()
        assert model.estimate("distinct", 100, 1).use_case == "distinct"
        assert model.estimate("sort", 100, 1).use_case == "sort"
        assert model.estimate("join", 100, 1, 10).use_case == "join"
        with pytest.raises(ValueError):
            model.estimate("merge", 100, 1)

    def test_should_rewrite_matches_estimate(self):
        model = CostModel()
        assert model.should_rewrite("distinct", 10_000, 10) == model.distinct(
            10_000, 10
        ).use_patches


class TestBreakeven:
    def test_breakeven_is_monotone_boundary(self):
        model = CostModel()
        n = 1_000_000
        rate = model.breakeven_rate("distinct", n)
        assert 0.0 < rate <= 1.0
        if rate < 1.0:
            below = int(n * rate * 0.9)
            above = int(n * min(1.0, rate * 1.1))
            assert model.should_rewrite("distinct", n, below)
            if above > int(n * rate):
                assert not model.should_rewrite("distinct", n, above)

    def test_breakeven_sort(self):
        model = CostModel()
        rate = model.breakeven_rate("sort", 1_000_000)
        assert rate > 0.0


class TestParallelGate:
    """Pin the fan-out decisions the benchmarks depend on.

    The 10M-row ``COUNT(DISTINCT)`` bench table (8 partitions, 2^18
    morsel size -> 40 morsels) must plan parallel on both backends even
    at dop=2; the 1M-row CI bench variant must still clear the process
    gate; and small inputs must stay serial.
    """

    def test_bench_table_plans_parallel_thread(self):
        model = CostModel()
        assert model.should_parallelize(10_000_000, 2, 40, "thread")
        assert model.should_parallelize(10_000_000, 4, 40, "thread")

    def test_bench_table_plans_parallel_process(self):
        model = CostModel()
        assert model.should_parallelize(10_000_000, 2, 40, "process")
        assert model.should_parallelize(10_000_000, 4, 40, "process")

    def test_ci_bench_table_clears_process_gate(self):
        # REPRO_BENCH_PARALLEL_ROWS=1_000_000: 8 partitions, 8 morsels.
        model = CostModel()
        assert model.should_parallelize(1_000_000, 2, 8, "process")

    def test_small_input_stays_serial(self):
        model = CostModel()
        assert not model.should_parallelize(200_000, 2, 8, "process")
        assert not model.should_parallelize(10_000, 4, 8, "thread")

    def test_process_breakeven_is_higher_than_thread(self):
        model = CostModel()
        n = 300_000
        assert model.should_parallelize(n, 2, 8, "thread")
        assert not model.should_parallelize(n, 2, 8, "process")

    def test_degenerate_shapes_stay_serial(self):
        model = CostModel()
        assert not model.should_parallelize(10_000_000, 1, 40, "process")
        assert not model.should_parallelize(10_000_000, 4, 1, "process")

    def test_backend_defaults_to_thread_weights(self):
        model = CostModel()
        explicit = model.parallel_scan(1_000_000, 4, 16, "thread")
        default = model.parallel_scan(1_000_000, 4, 16)
        assert default.patched_cost == explicit.patched_cost


class TestCostEstimate:
    def test_speedup(self):
        estimate = CostEstimate("distinct", 10.0, 2.0)
        assert estimate.speedup == 5.0
        assert estimate.use_patches

    def test_zero_patched_cost(self):
        estimate = CostEstimate("distinct", 10.0, 0.0)
        assert estimate.speedup == float("inf")
