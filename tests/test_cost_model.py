"""Unit tests for the rewrite cost model."""

import pytest

from repro.core.cost_model import CostEstimate, CostModel


class TestEstimates:
    def test_distinct_low_rate_wins(self):
        model = CostModel()
        estimate = model.distinct(1_000_000, 1_000)
        assert estimate.use_patches
        assert estimate.speedup > 2

    def test_distinct_all_patches_loses(self):
        model = CostModel()
        estimate = model.distinct(1_000_000, 1_000_000)
        assert not estimate.use_patches

    def test_sort_low_rate_wins(self):
        model = CostModel()
        assert model.sort(1_000_000, 1_000).use_patches

    def test_sort_zero_patches(self):
        model = CostModel()
        estimate = model.sort(1_000_000, 0)
        assert estimate.use_patches
        assert estimate.patched_cost > 0  # scan overhead still counted

    def test_join_low_rate_wins(self):
        model = CostModel()
        assert model.join(1_000_000, 5_000, 73_000).use_patches

    def test_estimate_dispatch(self):
        model = CostModel()
        assert model.estimate("distinct", 100, 1).use_case == "distinct"
        assert model.estimate("sort", 100, 1).use_case == "sort"
        assert model.estimate("join", 100, 1, 10).use_case == "join"
        with pytest.raises(ValueError):
            model.estimate("merge", 100, 1)

    def test_should_rewrite_matches_estimate(self):
        model = CostModel()
        assert model.should_rewrite("distinct", 10_000, 10) == model.distinct(
            10_000, 10
        ).use_patches


class TestBreakeven:
    def test_breakeven_is_monotone_boundary(self):
        model = CostModel()
        n = 1_000_000
        rate = model.breakeven_rate("distinct", n)
        assert 0.0 < rate <= 1.0
        if rate < 1.0:
            below = int(n * rate * 0.9)
            above = int(n * min(1.0, rate * 1.1))
            assert model.should_rewrite("distinct", n, below)
            if above > int(n * rate):
                assert not model.should_rewrite("distinct", n, above)

    def test_breakeven_sort(self):
        model = CostModel()
        rate = model.breakeven_rate("sort", 1_000_000)
        assert rate > 0.0


class TestCostEstimate:
    def test_speedup(self):
        estimate = CostEstimate("distinct", 10.0, 2.0)
        assert estimate.speedup == 5.0
        assert estimate.use_patches

    def test_zero_patched_cost(self):
        estimate = CostEstimate("distinct", 10.0, 0.0)
        assert estimate.speedup == float("inf")
