"""Integration tests: full workflows across all subsystems.

These mirror how a downstream user would drive the library: load
realistic data, run the self-managing advisor, verify that queries get
faster plans with identical results, mutate the data, and recover after
a crash.
"""

import numpy as np
import pytest

from repro import Database
from repro.core.advisor import ConstraintAdvisor
from repro.gen.synthetic import synthetic_table
from repro.gen.tpcds import TpcdsGenerator, load_tpcds
from repro.plan.optimizer import OptimizerOptions


class TestAdvisorToQueryPipeline:
    def test_full_self_management_cycle(self):
        db = Database()
        table = synthetic_table(
            "data", 5000, 0.02, 0.02, partition_count=2, seed=11
        )
        db.catalog.add_table(table)
        # Log retroactively so recovery tests elsewhere stay simple.
        baseline_distinct = db.sql("SELECT COUNT(DISTINCT u) AS n FROM data")
        baseline_sort = db.sql("SELECT s FROM data ORDER BY s")

        advisor = ConstraintAdvisor(db, nuc_threshold=0.05, nsc_threshold=0.05)
        created = advisor.run()
        assert created  # something was proposed and created

        rewritten_distinct = db.sql("SELECT COUNT(DISTINCT u) AS n FROM data")
        rewritten_sort = db.sql("SELECT s FROM data ORDER BY s")
        assert rewritten_distinct.scalar() == baseline_distinct.scalar()
        assert (
            rewritten_sort.column("s").to_pylist()
            == baseline_sort.column("s").to_pylist()
        )
        assert "PatchSelect" in db.explain("SELECT COUNT(DISTINCT u) AS n FROM data")


class TestTpcdsWorkload:
    @pytest.fixture(scope="class")
    def db(self):
        db = Database()
        load_tpcds(db, catalog_sales_rows=20_000, customer_rows=5_000, n_days=730)
        db.sql(
            "CREATE PATCHINDEX pi_sold ON catalog_sales(cs_sold_date_sk) TYPE SORTED"
        )
        db.sql(
            "CREATE PATCHINDEX pi_email ON customer(c_email_address) TYPE UNIQUE"
        )
        return db

    def test_join_rewrite_correctness(self, db):
        query = (
            "SELECT COUNT(*) AS n, SUM(cs.cs_quantity) AS q "
            "FROM catalog_sales cs JOIN date_dim d "
            "ON cs.cs_sold_date_sk = d.d_date_sk"
        )
        with_index = db.sql(query)
        without_index = db.sql(
            query, optimizer_options=OptimizerOptions(use_patch_indexes=False)
        )
        assert with_index.to_pylist() == without_index.to_pylist()
        assert "MergeJoin" in db.explain(query)

    def test_count_distinct_rewrite_correctness(self, db):
        query = "SELECT COUNT(DISTINCT c_email_address) AS n FROM customer"
        baseline = db.sql(
            query, optimizer_options=OptimizerOptions(use_patch_indexes=False)
        )
        assert db.sql(query).scalar() == baseline.scalar()

    def test_filtered_join_with_scan_ranges(self, db):
        query = (
            "SELECT COUNT(*) AS n FROM catalog_sales cs "
            "JOIN date_dim d ON cs.cs_sold_date_sk = d.d_date_sk "
            "WHERE d.d_year = 1998"
        )
        result = db.sql(query)
        assert result.scalar() > 0


class TestMutationsWithLiveIndexes:
    def test_insert_update_delete_with_all_rewrites(self):
        db = Database()
        db.sql("CREATE TABLE t (k BIGINT, s BIGINT) PARTITIONS 2")
        rows = ", ".join(f"({i}, {i})" for i in range(100))
        db.sql(f"INSERT INTO t VALUES {rows}")
        db.sql("CREATE PATCHINDEX pk ON t(k) TYPE UNIQUE")
        db.sql("CREATE PATCHINDEX ps ON t(s) TYPE SORTED")

        db.sql("INSERT INTO t VALUES (50, 200), (200, 0)")  # dup k=50; s=0 unsorted
        db.sql("DELETE FROM t WHERE k = 10")
        db.table("t").update_rowid(5, "k", 6)  # duplicate k=6

        count_distinct = db.sql("SELECT COUNT(DISTINCT k) AS n FROM t").scalar()
        ordered = db.sql("SELECT s FROM t ORDER BY s").column("s").to_pylist()

        # Reference: recompute without any indexes.
        keys = db.sql("SELECT k FROM t").column("k").to_pylist()
        sorts = db.sql("SELECT s FROM t").column("s").to_pylist()
        assert count_distinct == len(set(key for key in keys if key is not None))
        assert ordered == sorted(sorts)


class TestCrashRecovery:
    def test_wal_recovery_end_to_end(self, tmp_path):
        wal_path = tmp_path / "wal.jsonl"
        generator = TpcdsGenerator(seed=9)

        db = Database(wal_path)
        customer = db.create_table(
            "customer", generator.customer_schema(), partition_count=2
        )
        customer.load_columns(generator.customer(2000))
        db.sql("CREATE PATCHINDEX pi ON customer(c_email_address) TYPE UNIQUE")
        expected = db.sql(
            "SELECT COUNT(DISTINCT c_email_address) AS n FROM customer"
        ).scalar()
        original_patches = db.catalog.index("pi").patch_count

        # "Crash": rebuild from the WAL; data is re-loaded by the data
        # source loader, patches are re-discovered from the data.
        def reload(table):
            table.load_columns(TpcdsGenerator(seed=9).customer(2000))

        recovered = Database.recover(wal_path, {"customer": reload})
        index = recovered.catalog.index("pi")
        assert index.patch_count == original_patches
        got = recovered.sql(
            "SELECT COUNT(DISTINCT c_email_address) AS n FROM customer"
        ).scalar()
        assert got == expected


class TestMultipleIndexesPerTable:
    def test_paper_key_claim_multiple_sort_keys(self):
        """The paper's §VI-A1 claim: because the physical layout is
        untouched, one table can have several (approximate) sort keys."""
        db = Database()
        db.sql("CREATE TABLE m (a BIGINT, b BIGINT, c BIGINT)")
        n = 500
        rng = np.random.default_rng(13)
        a = np.arange(n)
        a[rng.choice(n, 5, replace=False)] = rng.integers(0, n, 5)
        b = np.arange(n) * 2
        b[rng.choice(n, 5, replace=False)] = rng.integers(0, 2 * n, 5)
        rows = ", ".join(
            f"({int(x)}, {int(y)}, {int(rng.integers(0, 10))})"
            for x, y in zip(a, b)
        )
        db.sql(f"INSERT INTO m VALUES {rows}")
        db.sql("CREATE PATCHINDEX ia ON m(a) TYPE SORTED")
        db.sql("CREATE PATCHINDEX ib ON m(b) TYPE SORTED")
        # Both sort rewrites fire on the same physical table.
        assert "MergeUnion" in db.explain("SELECT a FROM m ORDER BY a")
        assert "MergeUnion" in db.explain("SELECT b FROM m ORDER BY b")
        got_a = db.sql("SELECT a FROM m ORDER BY a").column("a").to_pylist()
        got_b = db.sql("SELECT b FROM m ORDER BY b").column("b").to_pylist()
        assert got_a == sorted(a.tolist())
        assert got_b == sorted(b.tolist())
