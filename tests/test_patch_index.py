"""Unit tests for the PatchIndex structure."""

import pytest

from repro.core.discovery import discover_table_nuc
from repro.core.patch_index import PatchIndex, PatchIndexMode
from repro.errors import SchemaError, ThresholdExceededError
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType


def make_table(values, partition_count=2, name="t"):
    return Table.from_pydict(
        name,
        Schema([Field("c", DataType.INT64), Field("d", DataType.INT64)]),
        {"c": values, "d": list(range(len(values)))},
        partition_count=partition_count,
    )


class TestCreation:
    def test_create_unique(self):
        table = make_table([1, 3, 4, 3, 2, 6, 7, 6])
        index = PatchIndex.create("pi", table, "c", "unique")
        assert index.kind == "unique"
        assert index.patch_count == 4
        assert index.exception_rate == 0.5
        assert index.rowids().tolist() == [1, 3, 5, 7]

    def test_create_sorted_global_scope(self):
        table = make_table([1, 3, 4, 3, 2, 6, 7, 6])
        index = PatchIndex.create("pi", table, "c", "sorted")
        # Global LIS keeps 5 of 8 values sorted: 3 patches.
        assert index.scope == "global"
        assert index.patch_count == 3

    def test_create_sorted_partition_scope(self):
        table = make_table([1, 3, 4, 3, 2, 6, 7, 6])
        index = PatchIndex.create("pi", table, "c", "sorted", scope="partition")
        # Per-partition LIS: [1,3,4,3] needs 1 patch, [2,6,7,6] needs 1.
        assert index.patch_count == 2

    def test_unknown_column(self):
        table = make_table([1])
        with pytest.raises(SchemaError):
            PatchIndex.create("pi", table, "nope", "unique")

    def test_threshold_exceeded(self):
        table = make_table([1, 1, 1, 1])
        with pytest.raises(ThresholdExceededError) as info:
            PatchIndex.create("pi", table, "c", "unique", threshold=0.5)
        assert info.value.rate == 1.0

    def test_creation_time_recorded(self):
        table = make_table(list(range(100)))
        index = PatchIndex.create("pi", table, "c", "unique")
        assert index.creation_seconds > 0

    def test_from_discovery(self):
        table = make_table([1, 1, 2, 3])
        result = discover_table_nuc(table, "c")
        index = PatchIndex.from_discovery("pi", table, "c", result)
        assert index.patch_count == 2


class TestModeSelection:
    def test_auto_picks_identifier_below_crossover(self):
        values = list(range(1000))
        values[0] = 1  # one duplicate pair -> rate 0.2%
        table = make_table(values, partition_count=1)
        index = PatchIndex.create("pi", table, "c", "unique")
        assert index.design == "identifier"

    def test_auto_picks_bitmap_above_crossover(self):
        values = [i // 2 for i in range(1000)]  # everything duplicated
        table = make_table(values, partition_count=1)
        index = PatchIndex.create("pi", table, "c", "unique")
        assert index.design == "bitmap"

    def test_explicit_modes(self):
        table = make_table([1, 1, 2, 3])
        ident = PatchIndex.create(
            "a", table, "c", "unique", mode=PatchIndexMode.IDENTIFIER
        )
        bitmap = PatchIndex.create(
            "b", table, "c", "unique", mode=PatchIndexMode.BITMAP
        )
        assert ident.design == "identifier"
        assert bitmap.design == "bitmap"

    def test_resolve(self):
        assert PatchIndexMode.AUTO.resolve(0.01) == "identifier"
        assert PatchIndexMode.AUTO.resolve(0.02) == "bitmap"
        assert PatchIndexMode.IDENTIFIER.resolve(0.99) == "identifier"
        assert PatchIndexMode.BITMAP.resolve(0.0) == "bitmap"


class TestQuerySurface:
    def test_mask_spans_partitions(self):
        table = make_table([1, 3, 4, 3, 2, 6, 7, 6], partition_count=2)
        index = PatchIndex.create("pi", table, "c", "unique")
        mask = index.mask_for_range(0, 8)
        assert mask.tolist() == [False, True, False, True, False, True, False, True]
        # Sub-range crossing the partition boundary.
        assert index.mask_for_range(2, 6).tolist() == [False, True, False, True]

    def test_contains(self):
        table = make_table([1, 3, 4, 3, 2, 6, 7, 6])
        index = PatchIndex.create("pi", table, "c", "unique")
        assert index.contains(3)
        assert not index.contains(0)

    def test_partition_patches_access(self):
        table = make_table([1, 3, 4, 3, 2, 6, 7, 6], partition_count=2)
        index = PatchIndex.create("pi", table, "c", "unique")
        assert index.partition_patches(0).rowids().tolist() == [1, 3]
        assert index.partition_patches(1).rowids().tolist() == [1, 3]


class TestStats:
    def test_stats_and_describe(self):
        table = make_table([1, 1, 2, 3], partition_count=2)
        index = PatchIndex.create("pi", table, "c", "unique")
        stats = index.stats()
        assert stats.name == "pi"
        assert stats.table_name == "t"
        assert stats.column_name == "c"
        assert stats.patch_count == 2
        assert stats.row_count == 4
        assert stats.partition_patch_counts == (2, 0)
        assert "pi" in index.describe()
        assert stats.memory_bytes == index.memory_usage_bytes()

    def test_memory_sums_partitions(self):
        table = make_table(list(range(100)), partition_count=4)
        index = PatchIndex.create(
            "pi", table, "c", "unique", mode=PatchIndexMode.BITMAP
        )
        # 4 partitions x 25 rows -> 4 x ceil(25/8)=4 bytes
        assert index.memory_usage_bytes() == 16


class TestDetach:
    def test_detach_stops_events(self):
        table = make_table([1, 2, 3, 4])
        index = PatchIndex.create("pi", table, "c", "unique")
        index.detach()
        table.insert_rows([[1, 9]])  # would demote rowid 0 if attached
        assert index.patch_count == 0
        index.detach()  # idempotent
