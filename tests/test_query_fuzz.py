"""End-to-end fuzzing: random SQL against a table with PatchIndexes.

The strongest whole-system property: for any generated query, executing
with PatchIndex rewrites enabled (forced past the cost model) returns
the same multiset of rows as executing with rewrites disabled — and the
same *order* for ORDER BY queries.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import Database
from repro.check import verify_plan
from repro.plan.optimizer import Optimizer, OptimizerOptions
from repro.plan.physical import PhysicalPlanner
from repro.sql.binder import Binder
from repro.sql.parser import parse_statement

_DB_CACHE: list[Database] = []


def fuzz_db() -> Database:
    """Build the shared fixture once (hypothesis-safe module cache)."""
    if not _DB_CACHE:
        rng = np.random.default_rng(77)
        n = 400
        unique = rng.permutation(n).astype(np.int64)
        unique[rng.choice(n, 8, replace=False)] = 7  # duplicates
        nearly_sorted = np.arange(n, dtype=np.int64)
        nearly_sorted[rng.choice(n, 8, replace=False)] = rng.integers(0, n, 8)
        category = rng.integers(0, 5, n)
        db = Database()
        db.sql("CREATE TABLE f (u BIGINT, s BIGINT, g BIGINT) PARTITIONS 3")
        rows = ", ".join(
            f"({int(a)}, {int(b)}, {int(c)})"
            for a, b, c in zip(unique, nearly_sorted, category)
        )
        db.sql(f"INSERT INTO f VALUES {rows}")
        for rowid in (5, 100, 300):  # sprinkle NULLs (maintained patches)
            db.table("f").update_rowid(rowid, "u", None)
        db.sql("CREATE PATCHINDEX fu ON f(u) TYPE UNIQUE")
        db.sql("CREATE PATCHINDEX fs ON f(s) TYPE SORTED")
        db.sql("CREATE TABLE dim (k BIGINT, label BIGINT)")
        dim_rows = ", ".join(f"({i}, {i * 10})" for i in range(0, n, 3))
        db.sql(f"INSERT INTO dim VALUES {dim_rows}")
        _DB_CACHE.append(db)
    return _DB_CACHE[0]


columns = st.sampled_from(["u", "s", "g"])
comparisons = st.sampled_from(["=", "<", "<=", ">", ">=", "<>"])


@st.composite
def predicates(draw):
    shape = draw(st.integers(0, 4))
    column = draw(columns)
    if shape == 0:
        op = draw(comparisons)
        value = draw(st.integers(-10, 410))
        return f"{column} {op} {value}"
    if shape == 1:
        low = draw(st.integers(0, 200))
        high = draw(st.integers(low, 400))
        return f"{column} BETWEEN {low} AND {high}"
    if shape == 2:
        values = draw(st.lists(st.integers(0, 400), min_size=1, max_size=4))
        return f"{column} IN ({', '.join(map(str, values))})"
    if shape == 3:
        negated = draw(st.booleans())
        return f"{column} IS {'NOT ' if negated else ''}NULL"
    left = draw(predicates())
    right = draw(predicates())
    connective = draw(st.sampled_from(["AND", "OR"]))
    return f"({left} {connective} {right})"


@st.composite
def queries(draw):
    shape = draw(st.integers(0, 4))
    where = f" WHERE {draw(predicates())}" if draw(st.booleans()) else ""
    if shape == 0:
        column = draw(columns)
        return f"SELECT DISTINCT {column} FROM f{where}"
    if shape == 1:
        column = draw(columns)
        return f"SELECT COUNT(DISTINCT {column}) AS n FROM f{where}"
    if shape == 2:
        column = draw(columns)
        direction = draw(st.sampled_from(["ASC", "DESC"]))
        return f"SELECT {column} FROM f{where} ORDER BY {column} {direction}"
    if shape == 3:
        key = draw(st.sampled_from(["u", "s"]))
        join_where = ""
        if draw(st.booleans()):
            # A simple qualified predicate (joins need f. prefixes).
            column = draw(columns)
            op = draw(comparisons)
            value = draw(st.integers(-10, 410))
            join_where = f" WHERE f.{column} {op} {value}"
        return (
            "SELECT COUNT(*) AS n, SUM(f.g) AS total FROM f "
            f"JOIN dim ON f.{key} = dim.k{join_where}"
        )
    column = draw(columns)
    return (
        f"SELECT g, COUNT(*) AS n, MIN({column}) AS lo FROM f{where} "
        "GROUP BY g ORDER BY g"
    )


class TestFuzz:
    @given(queries())
    @settings(max_examples=150, deadline=None)
    def test_rewrites_preserve_semantics(self, query):
        db = fuzz_db()
        plain = db.sql(
            query, optimizer_options=OptimizerOptions(use_patch_indexes=False)
        )
        patched = db.sql(
            query, optimizer_options=OptimizerOptions(always_rewrite=True)
        )
        assert sorted(map(str, plain.to_pylist())) == sorted(
            map(str, patched.to_pylist())
        ), query
        if "ORDER BY" in query and "GROUP BY" not in query:
            assert plain.to_pylist() == patched.to_pylist(), query

    @given(queries(), st.sampled_from([1, 4]))
    @settings(max_examples=60, deadline=None)
    def test_every_generated_plan_verifies(self, query, parallelism):
        """Plain and rewritten plans both satisfy the plan invariants.

        The planner already verifies every plan it emits; this calls
        :func:`repro.check.verify_plan` explicitly so a verifier
        regression fails here with the offending query attached, not
        deep inside an unrelated semantics assertion.
        """
        db = fuzz_db()
        statement = parse_statement(query)
        logical = Binder(db.catalog).bind_select(statement)
        for options in (
            OptimizerOptions(use_patch_indexes=False),
            OptimizerOptions(always_rewrite=True),
        ):
            optimized = Optimizer(db.catalog, options).optimize(logical)
            operator = PhysicalPlanner(parallelism=parallelism).plan(optimized)
            properties = verify_plan(operator)
            assert properties.schema.names == operator.schema.names, query
