"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Database, DataType, Field, Schema, Table
from repro.check import sanitize
from repro.storage.column import ColumnVector


@pytest.fixture(autouse=True)
def _sanitizer_teardown():
    """Under ``REPRO_SANITIZE=1``, every test must leave zero balances.

    The flag is captured at setup (monkeypatch-based tests may flip the
    env mid-test; those own their balance assertions), the ledger and
    order graph start clean, and at teardown every tracked resource —
    snapshot pins, shm segments, cache byte accounting — must be back
    to zero or the test fails with the acquiring stacks.
    """
    active = sanitize.enabled()
    if active:
        sanitize.reset()
    yield
    if active and sanitize.enabled():
        problems = sanitize.check_balances()
        sanitize.reset()
        if problems:
            pytest.fail(
                "sanitizer imbalance at teardown:\n- " + "\n- ".join(problems)
            )


@pytest.fixture
def simple_schema() -> Schema:
    return Schema(
        [
            Field("a", DataType.INT64),
            Field("b", DataType.STRING),
            Field("c", DataType.FLOAT64),
        ]
    )


@pytest.fixture
def simple_table(simple_schema: Schema) -> Table:
    """Eight rows over two partitions; column 'a' has dups and a NULL."""
    return Table.from_pydict(
        "t",
        simple_schema,
        {
            "a": [3, 1, 2, 2, 5, None, 7, 4],
            "b": list("abcdefgh"),
            "c": [0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5],
        },
        partition_count=2,
    )


@pytest.fixture
def figure2_column() -> ColumnVector:
    """The running example column of the paper's Figure 2."""
    return ColumnVector.from_pylist(DataType.INT64, [1, 3, 4, 3, 2, 6, 7, 6])


@pytest.fixture
def db() -> Database:
    return Database()


def make_int_column(values: list[int | None]) -> ColumnVector:
    return ColumnVector.from_pylist(DataType.INT64, values)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
