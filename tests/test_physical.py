"""Tests for the physical planner: scan-range derivation, build side."""


from repro.exec.expressions import And, ColumnRef, Comparison, Literal
from repro.exec.operators import Filter, HashJoin, Project, TableScan
from repro.exec.result import collect
from repro.plan import logical as lp
from repro.plan.physical import PhysicalPlanner
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType


def make_table(n=100, partition_count=2, block_size=10):
    return Table.from_pydict(
        "t",
        Schema([Field("x", DataType.INT64)]),
        {"x": list(range(n))},
        partition_count=partition_count,
        block_size=block_size,
    )


class TestScanRangeDerivation:
    def test_filter_over_scan_prunes_blocks(self):
        table = make_table()
        plan = lp.LogicalFilter(
            lp.LogicalScan(table),
            Comparison(">=", ColumnRef("x"), Literal(80)),
        )
        operator = PhysicalPlanner().plan(plan)
        assert isinstance(operator, Filter)
        scan = operator.child
        assert isinstance(scan, TableScan)
        assert scan.scan_ranges is not None
        covered = sum(stop - start for start, stop in scan.scan_ranges)
        assert covered < table.row_count
        # The result is still exact (the filter re-checks).
        assert collect(operator).column("x").to_pylist() == list(range(80, 100))

    def test_flipped_literal_comparison(self):
        table = make_table()
        plan = lp.LogicalFilter(
            lp.LogicalScan(table),
            Comparison("<", Literal(20), ColumnRef("x")),  # 20 < x
        )
        operator = PhysicalPlanner().plan(plan)
        result = collect(operator)
        assert result.column("x").to_pylist() == list(range(21, 100))
        assert operator.child.scan_ranges is not None

    def test_conjunct_inside_and(self):
        table = make_table()
        predicate = And(
            Comparison(">", ColumnRef("x"), Literal(90)),
            Comparison("<", ColumnRef("x"), Literal(95)),
        )
        operator = PhysicalPlanner().plan(
            lp.LogicalFilter(lp.LogicalScan(table), predicate)
        )
        assert collect(operator).column("x").to_pylist() == [91, 92, 93, 94]

    def test_derivation_can_be_disabled(self):
        table = make_table()
        plan = lp.LogicalFilter(
            lp.LogicalScan(table),
            Comparison(">=", ColumnRef("x"), Literal(80)),
        )
        operator = PhysicalPlanner(derive_scan_ranges=False).plan(plan)
        assert operator.child.scan_ranges is None

    def test_no_prunable_conjunct(self):
        table = make_table()
        plan = lp.LogicalFilter(
            lp.LogicalScan(table),
            Comparison("=", ColumnRef("x"), ColumnRef("x")),
        )
        operator = PhysicalPlanner().plan(plan)
        assert operator.child.scan_ranges is None


class TestBuildSideChoice:
    def make_join(self, left_rows, right_rows):
        left = Table.from_pydict(
            "l",
            Schema([Field("lk", DataType.INT64)]),
            {"lk": list(range(left_rows))},
        )
        right = Table.from_pydict(
            "r",
            Schema([Field("rk", DataType.INT64)]),
            {"rk": list(range(right_rows))},
        )
        return lp.LogicalJoin(
            lp.LogicalScan(left), lp.LogicalScan(right), "lk", "rk"
        )

    def test_small_right_builds_right(self):
        operator = PhysicalPlanner().plan(self.make_join(1000, 10))
        assert isinstance(operator, HashJoin)
        assert operator.build.table.name == "r"

    def test_small_left_builds_left_with_reorder(self):
        plan = self.make_join(10, 1000)
        operator = PhysicalPlanner().plan(plan)
        # Swapped: a projection restores the (lk, rk) column order.
        assert isinstance(operator, Project)
        assert operator.schema.names == plan.schema.names
        result = collect(operator)
        assert result.row_count == 10

    def test_choice_can_be_disabled(self):
        operator = PhysicalPlanner(choose_build_side=False).plan(
            self.make_join(10, 1000)
        )
        assert isinstance(operator, HashJoin)
        assert operator.build.table.name == "r"


class TestCardinality:
    def test_estimates(self):
        from repro.plan.cardinality import estimate_rows

        table = make_table(n=1000)
        scan = lp.LogicalScan(table)
        assert estimate_rows(scan) == 1000
        filtered = lp.LogicalFilter(
            scan, Comparison("=", ColumnRef("x"), Literal(1))
        )
        assert estimate_rows(filtered) == 100  # 10% equality selectivity
        assert estimate_rows(lp.LogicalLimit(scan, 5)) == 5
        assert (
            estimate_rows(lp.LogicalAggregate(scan, (), ()))
            == 1
        )

    def test_patch_select_estimate_is_exact(self):
        from repro.core.patch_index import PatchIndex
        from repro.plan.cardinality import estimate_rows

        table = Table.from_pydict(
            "t",
            Schema([Field("c", DataType.INT64)]),
            {"c": [1, 1, 2, 3]},
        )
        index = PatchIndex.create("pi", table, "c", "unique")
        scan = lp.LogicalScan(table)
        use = lp.LogicalPatchSelect(scan, index, use_patches=True)
        exclude = lp.LogicalPatchSelect(scan, index, use_patches=False)
        assert estimate_rows(use) == 2
        assert estimate_rows(exclude) == 2
