"""Unit tests for partitioned tables: loading, rowids, mutations, events."""

import pytest

from repro.errors import SchemaError, StorageError
from repro.storage.column import ColumnVector
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType


def two_col_schema() -> Schema:
    return Schema([Field("x", DataType.INT64), Field("y", DataType.STRING)])


class TestLoading:
    def test_range_split_across_partitions(self):
        table = Table.from_pydict(
            "t",
            two_col_schema(),
            {"x": list(range(10)), "y": [str(i) for i in range(10)]},
            partition_count=3,
        )
        assert table.row_count == 10
        sizes = [p.row_count for p in table.partitions]
        assert sum(sizes) == 10
        # Range split keeps order: reading back is the original order.
        assert table.read_column("x").to_pylist() == list(range(10))

    def test_rowids_dense_and_contiguous(self):
        table = Table.from_pydict(
            "t",
            two_col_schema(),
            {"x": list(range(7)), "y": ["a"] * 7},
            partition_count=2,
        )
        seen = []
        for partition in table.partitions:
            start, stop = partition.rowid_range
            seen.extend(range(start, stop))
        assert seen == list(range(7))

    def test_round_robin_blocks(self):
        table = Table("t", two_col_schema(), partition_count=2, block_size=2)
        table.load_columns(
            {
                "x": ColumnVector.from_pylist(DataType.INT64, list(range(8))),
                "y": ColumnVector.from_pylist(DataType.STRING, ["a"] * 8),
            },
            partition_by_round_robin_blocks=True,
        )
        assert table.partitions[0].column("x").to_pylist() == [0, 1, 4, 5]
        assert table.partitions[1].column("x").to_pylist() == [2, 3, 6, 7]

    def test_missing_column_raises(self):
        table = Table("t", two_col_schema())
        with pytest.raises(SchemaError):
            table.load_columns(
                {"x": ColumnVector.from_pylist(DataType.INT64, [1])}
            )

    def test_length_mismatch_raises(self):
        table = Table("t", two_col_schema())
        with pytest.raises(StorageError):
            table.load_columns(
                {
                    "x": ColumnVector.from_pylist(DataType.INT64, [1]),
                    "y": ColumnVector.from_pylist(DataType.STRING, ["a", "b"]),
                }
            )

    def test_zero_partitions_rejected(self):
        with pytest.raises(StorageError):
            Table("t", two_col_schema(), partition_count=0)


class TestInsert:
    def test_insert_appends_to_last_partition(self):
        table = Table.from_pydict(
            "t",
            two_col_schema(),
            {"x": [1, 2], "y": ["a", "b"]},
            partition_count=2,
        )
        inserted = table.insert_rows([[3, "c"], [None, "d"]])
        assert inserted == 2
        assert table.row_count == 4
        assert table.read_column("x").to_pylist() == [1, 2, 3, None]

    def test_insert_row_width_checked(self):
        table = Table("t", two_col_schema())
        with pytest.raises(SchemaError):
            table.insert_rows([[1]])

    def test_insert_emits_event(self):
        table = Table.from_pydict(
            "t", two_col_schema(), {"x": [1], "y": ["a"]}
        )
        events = []
        table.add_listener(lambda event, payload: events.append((event, payload)))
        table.insert_rows([[2, "b"]])
        assert len(events) == 1
        event, payload = events[0]
        assert event == "append"
        assert payload["start_rowid"] == 1
        assert payload["row_count"] == 1


class TestDelete:
    def test_delete_renumbers(self):
        table = Table.from_pydict(
            "t",
            two_col_schema(),
            {"x": list(range(6)), "y": ["a"] * 6},
            partition_count=2,
        )
        removed = table.delete_rowids([1, 4])
        assert removed == 2
        assert table.row_count == 4
        assert table.read_column("x").to_pylist() == [0, 2, 3, 5]
        # Rowids are dense again.
        stops = [p.rowid_range for p in table.partitions]
        assert stops[-1][1] == 4

    def test_delete_out_of_range(self):
        table = Table.from_pydict("t", two_col_schema(), {"x": [1], "y": ["a"]})
        with pytest.raises(StorageError):
            table.delete_rowids([5])

    def test_delete_event_carries_partition_breakdown(self):
        table = Table.from_pydict(
            "t",
            two_col_schema(),
            {"x": list(range(6)), "y": ["a"] * 6},
            partition_count=2,
        )
        events = []
        table.add_listener(lambda event, payload: events.append((event, payload)))
        table.delete_rowids([0, 4])
        ((event, payload),) = events
        assert event == "delete"
        breakdown = dict(payload["per_partition"])
        assert breakdown[0].tolist() == [0]
        assert breakdown[1].tolist() == [1]  # rowid 4 is local 1 in partition 1

    def test_delete_nothing(self):
        table = Table.from_pydict("t", two_col_schema(), {"x": [1], "y": ["a"]})
        assert table.delete_rowids([]) == 0


class TestUpdate:
    def test_update_value(self):
        table = Table.from_pydict(
            "t", two_col_schema(), {"x": [1, 2], "y": ["a", "b"]}
        )
        table.update_rowid(1, "x", 99)
        assert table.read_column("x").to_pylist() == [1, 99]

    def test_update_to_null(self):
        table = Table.from_pydict(
            "t", two_col_schema(), {"x": [1, 2], "y": ["a", "b"]}
        )
        table.update_rowid(0, "x", None)
        assert table.read_column("x").to_pylist() == [None, 2]

    def test_update_event_has_old_value(self):
        table = Table.from_pydict(
            "t", two_col_schema(), {"x": [1, 2], "y": ["a", "b"]}
        )
        events = []
        table.add_listener(lambda event, payload: events.append((event, payload)))
        table.update_rowid(1, "x", 5)
        ((event, payload),) = events
        assert event == "update"
        assert payload["old_value"] == 2
        assert payload["value"] == 5


class TestListeners:
    def test_remove_listener(self):
        table = Table.from_pydict("t", two_col_schema(), {"x": [1], "y": ["a"]})
        events = []
        listener = lambda event, payload: events.append(event)  # noqa: E731
        table.add_listener(listener)
        table.remove_listener(listener)
        table.insert_rows([[2, "b"]])
        assert events == []


class TestPartitionOfRowid:
    def test_lookup(self):
        table = Table.from_pydict(
            "t",
            two_col_schema(),
            {"x": list(range(6)), "y": ["a"] * 6},
            partition_count=2,
        )
        assert table.partition_of_rowid(0).partition_id == 0
        assert table.partition_of_rowid(5).partition_id == 1
        with pytest.raises(StorageError):
            table.partition_of_rowid(6)
