"""Cross-backend result parity and process-backend robustness.

Serial, thread-pool and process-pool execution of the same query must
return identical results on a durable memory-mapped database: process
workers attach the data directory read-only, memory-map the
checkpointed segments, replay the WAL data tail and rebuild shipped
PatchIndexes, so any divergence is a real bug, not noise.

The robustness half injects worker faults through
``repro.exec.parallel.procpool.FAULT_INJECTION``: a worker dying
mid-query (``os._exit``) or failing with an unpicklable error must not
hang the gather — each affected morsel retries serially, the
``parallel.worker_failures`` counter advances, and no shared-memory
block is leaked.
"""

import multiprocessing
import os
import shutil
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.cost_model import CostModel
from repro.errors import StorageError
from repro.exec.batch import RecordBatch
from repro.exec.parallel import procpool
from repro.exec.parallel.procpool import shutdown_process_pool
from repro.exec.parallel.shm import SHM_MIN_BYTES, attach_block, decode, encode
from repro.exec.result import collect
from repro.obs.profile import profile_collect
from repro.plan.optimizer import Optimizer
from repro.plan.physical import PhysicalPlanner
from repro.sql.binder import Binder
from repro.sql.parser import parse_statement
from repro.storage.column import ColumnVector
from repro.storage.database import Database
from repro.storage.engine import DurableEngine
from repro.storage.schema import Field, Schema
from repro.types import DataType
from tests.test_query_fuzz import queries

#: Zeroed fan-out weights: every backend passes the cost gate, so the
#: 400-row fixture plans parallel without pretending to be 10M rows.
FORCE = CostModel(
    parallel_startup_weight=0,
    morsel_dispatch_weight=0,
    process_startup_weight=0,
    process_dispatch_weight=0,
)

_DB_CACHE: list[Database] = []
_DB_ROOT: list[str] = []


def backend_db() -> Database:
    """The fuzz fixture's twin on a durable mmap'd engine (cached).

    Same data as ``tests.test_query_fuzz.fuzz_db`` — a nearly-unique
    column, a nearly-sorted column, a category column, NULLs, two
    PatchIndexes and a join dimension — but checkpointed to a data
    directory mid-build so worker attaches exercise both the segment
    load and the WAL-tail replay (an update and an insert land after
    the checkpoint).
    """
    if not _DB_CACHE:
        root = tempfile.mkdtemp(prefix="backend_db_")
        rng = np.random.default_rng(77)
        n = 400
        unique = rng.permutation(n).astype(np.int64)
        unique[rng.choice(n, 8, replace=False)] = 7  # duplicates
        nearly_sorted = np.arange(n, dtype=np.int64)
        nearly_sorted[rng.choice(n, 8, replace=False)] = rng.integers(0, n, 8)
        category = rng.integers(0, 5, n).astype(np.int64)
        db = Database(path=root, mmap=True, sync=False)
        schema = Schema(
            [
                Field("u", DataType.INT64),
                Field("s", DataType.INT64),
                Field("g", DataType.INT64),
            ]
        )
        table = db.create_table("f", schema, partition_count=3, block_size=8)
        table.load_columns(
            {
                "u": ColumnVector(DataType.INT64, unique),
                "s": ColumnVector(DataType.INT64, nearly_sorted),
                "g": ColumnVector(DataType.INT64, category),
            },
            partition_by_round_robin_blocks=True,
        )
        for rowid in (5, 100):
            table.update_rowid(rowid, "u", None)
        db.sql("CHECKPOINT")
        # Past-checkpoint tail the worker attach must replay.
        table.update_rowid(300, "u", None)
        db.sql("INSERT INTO f VALUES (1000, 400, 2), (1001, 401, 4)")
        db.sql("CREATE PATCHINDEX fu ON f(u) TYPE UNIQUE")
        db.sql("CREATE PATCHINDEX fs ON f(s) TYPE SORTED")
        db.sql("CREATE TABLE dim (k BIGINT, label BIGINT)")
        dim_rows = ", ".join(f"({i}, {i * 10})" for i in range(0, n, 3))
        db.sql(f"INSERT INTO dim VALUES {dim_rows}")
        _DB_CACHE.append(db)
        _DB_ROOT.append(root)
    return _DB_CACHE[0]


@pytest.fixture(scope="module", autouse=True)
def _teardown():
    yield
    shutdown_process_pool()
    if _DB_CACHE:
        _DB_CACHE.pop().close()
        shutil.rmtree(_DB_ROOT.pop(), ignore_errors=True)


def plan_query(
    db: Database,
    text: str,
    backend: str | None,
    parallelism: int = 4,
    morsel_size: int = 16,
):
    statement = parse_statement(text)
    logical = Binder(db.catalog).bind_select(statement)
    optimized = Optimizer(db.catalog).optimize(logical)
    return PhysicalPlanner(
        parallelism=parallelism,
        morsel_size=morsel_size,
        cost_model=FORCE,
        backend=backend,
        database=db,
    ).plan(optimized)


def run_query(db: Database, text: str, backend: str | None, **kwargs):
    return collect(plan_query(db, text, backend, **kwargs))


def assert_parity(query: str, reference, candidate) -> None:
    assert sorted(map(str, reference.to_pylist())) == sorted(
        map(str, candidate.to_pylist())
    ), query
    if "ORDER BY" in query and "GROUP BY" not in query:
        assert reference.to_pylist() == candidate.to_pylist(), query


def parallel_operators(operator) -> list:
    found = []

    def walk(node):
        if hasattr(node, "backend"):
            found.append(node)
        for child in node.children():
            walk(child)

    walk(operator)
    return found


FIXED_CORPUS = [
    "SELECT u, s FROM f WHERE u < 100",
    "SELECT COUNT(DISTINCT u) AS n FROM f",
    "SELECT DISTINCT g FROM f",
    "SELECT g, SUM(s) AS total FROM f GROUP BY g ORDER BY g",
    "SELECT u FROM f ORDER BY u DESC",
    "SELECT s FROM f WHERE s BETWEEN 40 AND 200 ORDER BY s",
    "SELECT COUNT(*) AS n FROM f WHERE u IS NULL",
    "SELECT u, s FROM f WHERE (u < 50 OR s > 350)",
    "SELECT MIN(u) AS lo, MAX(s) AS hi, COUNT(*) AS n FROM f",
]


class TestBackendParity:
    def test_fixed_corpus(self):
        db = backend_db()
        for query in FIXED_CORPUS:
            serial = run_query(db, query, None, parallelism=1)
            threaded = run_query(db, query, "thread")
            processed = run_query(db, query, "process")
            assert_parity(query, serial, threaded)
            assert_parity(query, serial, processed)

    @given(queries())
    @settings(max_examples=25, deadline=None)
    def test_fuzz_corpus(self, query):
        db = backend_db()
        serial = run_query(db, query, None, parallelism=1)
        threaded = run_query(db, query, "thread")
        processed = run_query(db, query, "process")
        assert_parity(query, serial, threaded)
        assert_parity(query, serial, processed)

    def test_parity_under_spawn(self, monkeypatch):
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn start method unavailable")
        db = backend_db()
        monkeypatch.setenv("REPRO_PARALLEL_START_METHOD", "spawn")
        try:
            query = "SELECT COUNT(DISTINCT u) AS n FROM f"
            serial = run_query(db, query, None, parallelism=1)
            processed = run_query(db, query, "process")
            assert_parity(query, serial, processed)
            assert db.obs.counter("parallel.worker_failures").value == 0
        finally:
            # Do not leave a spawn pool behind for the other tests.
            shutdown_process_pool()

    def test_process_backend_is_labelled(self):
        db = backend_db()
        operator = plan_query(db, "SELECT DISTINCT g FROM f", "process")
        labels = [op.label() for op in parallel_operators(operator)]
        assert labels and all("backend=process" in label for label in labels)

    def test_memory_engine_falls_back_to_threads(self):
        memory_db = Database()
        schema = Schema([Field("u", DataType.INT64)])
        table = memory_db.create_table(
            "m", schema, partition_count=3, block_size=8
        )
        table.load_columns(
            {
                "u": ColumnVector(
                    DataType.INT64, np.arange(300, dtype=np.int64)
                )
            },
            partition_by_round_robin_blocks=True,
        )
        operator = plan_query(memory_db, "SELECT u FROM m", "process")
        parallel = parallel_operators(operator)
        assert parallel, "expected a thread-parallel plan"
        for op in parallel:
            assert op.backend is None
            assert "backend=process" not in op.label()
        serial = run_query(memory_db, "SELECT u FROM m", None, parallelism=1)
        fallback = run_query(memory_db, "SELECT u FROM m", "process")
        assert_parity("SELECT u FROM m", serial, fallback)


class TestWorkerFailures:
    def test_worker_death_retries_serially(self, monkeypatch):
        db = backend_db()
        monkeypatch.setattr(procpool, "FAULT_INJECTION", "exit")
        before = db.obs.counter("parallel.worker_failures").value
        retries_before = db.obs.counter("parallel.serial_retries").value
        query = "SELECT u FROM f ORDER BY u"
        serial = run_query(db, query, None, parallelism=1)
        survived = run_query(db, query, "process")
        assert_parity(query, serial, survived)
        assert db.obs.counter("parallel.worker_failures").value > before
        assert db.obs.counter("parallel.serial_retries").value > retries_before

    def test_unpicklable_error_retries_serially(self, monkeypatch):
        db = backend_db()
        monkeypatch.setattr(procpool, "FAULT_INJECTION", "unpicklable-error")
        before = db.obs.counter("parallel.worker_failures").value
        query = "SELECT COUNT(DISTINCT u) AS n FROM f"
        serial = run_query(db, query, None, parallelism=1)
        survived = run_query(db, query, "process")
        assert_parity(query, serial, survived)
        assert db.obs.counter("parallel.worker_failures").value > before

    def test_pool_recovers_after_death(self, monkeypatch):
        db = backend_db()
        monkeypatch.setattr(procpool, "FAULT_INJECTION", "exit")
        run_query(db, "SELECT DISTINCT g FROM f", "process")
        monkeypatch.setattr(procpool, "FAULT_INJECTION", None)
        failures = db.obs.counter("parallel.worker_failures").value
        query = "SELECT DISTINCT g FROM f"
        serial = run_query(db, query, None, parallelism=1)
        healthy = run_query(db, query, "process")
        assert_parity(query, serial, healthy)
        assert db.obs.counter("parallel.worker_failures").value == failures

    def test_stale_snapshot_falls_back_serially(self):
        db = backend_db()
        query = "SELECT COUNT(*) AS n FROM f WHERE s >= 0"
        expected = run_query(db, query, None, parallelism=1)
        operator = plan_query(db, query, "process")
        before = db.obs.counter("parallel.worker_failures").value
        # Mutate *after* planning: the transport's snapshot LSN is now
        # stale, so every worker attach refuses and the morsels rerun
        # serially.  The plan's morsel grid was fixed at planning time,
        # so the answer matches the plan-time snapshot, not the insert.
        # (Recycle the pool first: a warm worker could legitimately
        # serve the snapshot from its table cache without re-attaching.)
        db.sql("INSERT INTO f VALUES (2000, 402, 1)")
        shutdown_process_pool()
        try:
            survived = collect(operator)
            assert_parity(query, expected, survived)
            assert db.obs.counter("parallel.worker_failures").value > before
        finally:
            db.sql("DELETE FROM f WHERE u = 2000")

    def test_no_shm_blocks_leaked(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        db = backend_db()
        run_query(db, "SELECT u, s, g FROM f", "process")
        # LIMIT closes the Exchange early: cancelled/running tasks must
        # reap their blocks instead of leaking them.
        run_query(db, "SELECT u FROM f LIMIT 3", "process")
        prefix = f"repro_{os.getpid()}_"
        leaked = [
            name for name in os.listdir("/dev/shm") if name.startswith(prefix)
        ]
        assert leaked == []


class TestShmTransport:
    def test_large_payload_roundtrips_via_shm(self):
        schema = Schema([Field("a", DataType.INT64)])
        values = np.arange(50_000, dtype=np.int64)
        validity = np.ones(50_000, dtype=bool)
        validity[7] = False
        rowids = np.arange(50_000, dtype=np.int64)
        batch = RecordBatch(
            schema,
            {"a": ColumnVector(DataType.INT64, values, validity)},
            rowids=rowids,
        )
        payload = encode([batch], "repro_shm_test_large")
        assert payload["transport"] == "shm"
        assert payload["shm_bytes"] >= SHM_MIN_BYTES
        out = decode(payload)
        assert len(out) == 1
        column = out[0].column("a")
        assert np.array_equal(column.values, values)
        assert column.validity is not None
        assert not bool(column.validity[7])
        assert np.array_equal(out[0].rowids, rowids)
        with pytest.raises(FileNotFoundError):
            attach_block("repro_shm_test_large")  # decode unlinked it

    def test_small_payload_falls_back_to_pickle(self):
        schema = Schema([Field("a", DataType.INT64)])
        batch = RecordBatch(
            schema, {"a": ColumnVector(DataType.INT64, np.arange(4))}
        )
        payload = encode([batch], "repro_shm_test_small")
        assert payload["transport"] == "pickle"
        out = decode(payload)
        assert np.array_equal(out[0].column("a").values, np.arange(4))

    def test_string_payload_falls_back_to_pickle(self):
        schema = Schema([Field("a", DataType.STRING)])
        values = np.array(["x" * 64] * 2048, dtype=object)
        batch = RecordBatch(
            schema, {"a": ColumnVector(DataType.STRING, values)}
        )
        payload = encode([batch], "repro_shm_test_ragged")
        assert payload["transport"] == "pickle"
        out = decode(payload)
        assert list(out[0].column("a").values) == list(values)

    def test_profile_reports_process_backend(self):
        db = backend_db()
        operator = plan_query(
            db, "SELECT u, s, g FROM f", "process", morsel_size=512
        )
        result, profile = profile_collect(operator, "parity profile")
        assert result.row_count == db.table("f").row_count
        details = [
            node.details
            for node in profile.root.walk()
            if node.details.get("backend") == "process"
        ]
        assert details, "profile lost the process backend"
        assert all("shm_bytes" in entry for entry in details)


class TestWorkerAttach:
    def test_attach_matches_coordinator_tables(self):
        db = backend_db()
        engine = db.engine
        assert isinstance(engine, DurableEngine)
        attached = engine.attach_tables(expected_lsn=db.wal.last_lsn)
        assert set(attached) == set(db.catalog.table_names())
        for name, worker_table in attached.items():
            live = db.table(name)
            assert worker_table.row_count == live.row_count
            for field in live.schema:
                ours = live.read_column(field.name)
                theirs = worker_table.read_column(field.name)
                assert np.array_equal(ours.values, theirs.values), (
                    name,
                    field.name,
                )
                assert np.array_equal(
                    ours.validity_or_all_true(),
                    theirs.validity_or_all_true(),
                ), (name, field.name)

    def test_attach_rejects_stale_lsn(self):
        db = backend_db()
        engine = db.engine
        assert isinstance(engine, DurableEngine)
        with pytest.raises(StorageError, match="LSN"):
            engine.attach_tables(expected_lsn=db.wal.last_lsn + 1)
