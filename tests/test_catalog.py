"""Unit tests for the catalog."""

import pytest

from repro.core.patch_index import PatchIndex
from repro.errors import CatalogError
from repro.storage.catalog import Catalog
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType


def make_table(name="t"):
    return Table.from_pydict(
        name, Schema([Field("c", DataType.INT64)]), {"c": [1, 2, 2]}
    )


class TestTables:
    def test_add_and_get(self):
        catalog = Catalog()
        table = make_table()
        catalog.add_table(table)
        assert catalog.table("t") is table
        assert catalog.has_table("t")
        assert catalog.table_names() == ["t"]

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.add_table(make_table())
        with pytest.raises(CatalogError):
            catalog.add_table(make_table())

    def test_unknown_raises(self):
        with pytest.raises(CatalogError):
            Catalog().table("nope")

    def test_drop(self):
        catalog = Catalog()
        catalog.add_table(make_table())
        catalog.drop_table("t")
        assert not catalog.has_table("t")
        with pytest.raises(CatalogError):
            catalog.drop_table("t")


class TestIndexes:
    def make_catalog(self):
        catalog = Catalog()
        table = make_table()
        catalog.add_table(table)
        index = PatchIndex.create("pi", table, "c", "unique")
        catalog.add_index(index)
        return catalog, index

    def test_add_and_find(self):
        catalog, index = self.make_catalog()
        assert catalog.index("pi") is index
        assert catalog.has_index("pi")
        assert catalog.find_index("t", "c", "unique") is index
        assert catalog.find_index("t", "c", "sorted") is None
        assert catalog.indexes_on("t") == [index]
        assert catalog.indexes_on("t", "c") == [index]
        assert catalog.indexes_on("t", "other") == []

    def test_duplicate_index_rejected(self):
        catalog, index = self.make_catalog()
        with pytest.raises(CatalogError):
            catalog.add_index(index)

    def test_index_on_missing_table_rejected(self):
        catalog = Catalog()
        table = make_table()
        index = PatchIndex.create("pi", table, "c", "unique")
        with pytest.raises(CatalogError):
            catalog.add_index(index)

    def test_drop_index_detaches(self):
        catalog, index = self.make_catalog()
        table = catalog.table("t")
        catalog.drop_index("pi")
        assert not catalog.has_index("pi")
        # Mutations no longer touch the dropped index.
        table.insert_rows([[1]])
        assert index.patch_count == 2

    def test_drop_table_drops_its_indexes(self):
        catalog, index = self.make_catalog()
        catalog.drop_table("t")
        assert not catalog.has_index("pi")
