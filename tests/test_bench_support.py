"""Tests for the benchmark support modules (harness, reporting)."""

import time

from repro.bench.harness import MeasuredRun, Timer, measure
from repro.bench.reporting import format_series, format_table


class TestMeasure:
    def test_returns_result_and_positive_time(self):
        run = measure(lambda: sum(range(1000)), repeats=2, warmup=1)
        assert run.result == sum(range(1000))
        assert run.seconds > 0
        assert run.repeats == 2
        assert len(run.all_seconds) == 2
        assert run.seconds == min(run.all_seconds)

    def test_milliseconds(self):
        run = MeasuredRun(0.5, 1, (0.5,), None)
        assert run.milliseconds == 500.0

    def test_warmup_runs(self):
        calls = []
        measure(lambda: calls.append(1), repeats=2, warmup=3)
        assert len(calls) == 5


class TestTimer:
    def test_measures_interval(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.009
        assert timer.milliseconds >= 9


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            "demo", ["col", "value"], [["a", 1.23456], ["bbbb", 2]]
        )
        lines = text.splitlines()
        assert lines[0] == "== demo =="
        assert "col" in lines[1] and "value" in lines[1]
        assert "1.235" in text  # floats to 3 decimals
        assert "bbbb" in text

    def test_empty_rows(self):
        text = format_table("t", ["a"], [])
        assert "== t ==" in text


class TestFormatSeries:
    def test_one_row_per_x(self):
        text = format_series(
            "sweep",
            "rate",
            [0.1, 0.2],
            {"fast": [1.0, 2.0], "slow": [3.0, 4.0]},
        )
        lines = text.splitlines()
        assert "fast [ms]" in lines[1]
        assert "slow [ms]" in lines[1]
        assert len(lines) == 5  # title + header + rule + 2 rows
        assert "0.1" in lines[3]

    def test_custom_unit(self):
        text = format_series("s", "x", [1], {"a": [2.0]}, unit="MB")
        assert "a [MB]" in text
