"""Metrics layer: instruments, registry, export, database integration."""

import json
import threading

import pytest

from repro import Database
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter("c")
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_thread_safe_under_contention(self):
        counter = Counter("c")

        def bump():
            for __ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for __ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7


class TestHistogram:
    def test_summary_statistics(self):
        histogram = Histogram("h")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 3
        assert summary["sum"] == 6.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["mean"] == 2.0

    def test_empty_summary_has_no_infinities(self):
        assert Histogram("h").summary() == {"count": 0, "sum": 0.0}

    def test_bucket_counts(self):
        histogram = Histogram("h", buckets=(1.0, 4.0))
        for value in (0.5, 2.0, 100.0):
            histogram.observe(value)
        assert histogram.summary()["buckets"] == {"le_1": 1, "le_4": 1}
        # The overflow observation lives in the implicit +inf bucket.
        assert histogram.bucket_counts[-1] == 1


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_name_cannot_change_kind(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_export_shape(self):
        registry = MetricsRegistry()
        registry.counter("queries").inc(3)
        registry.gauge("ratio").set(0.5)
        registry.histogram("lat").observe(0.1)
        snapshot = registry.export()
        assert snapshot["counters"] == {"queries": 3}
        assert snapshot["gauges"] == {"ratio": 0.5}
        assert snapshot["histograms"]["lat"]["count"] == 1

    def test_to_json_round_trips(self):
        registry = MetricsRegistry()
        registry.counter("queries").inc()
        parsed = json.loads(registry.to_json())
        assert parsed["counters"]["queries"] == 1

    def test_to_text_prometheus_flavour(self):
        registry = MetricsRegistry()
        registry.counter("queries").inc(2)
        registry.gauge("ratio").set(0.25)
        registry.histogram("lat").observe(1.5)
        lines = registry.to_text().splitlines()
        assert "queries_total 2" in lines
        assert "ratio 0.25" in lines
        assert "lat_count 1" in lines
        assert "lat_sum 1.5" in lines

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.reset()
        assert registry.export()["counters"] == {}


@pytest.fixture
def db() -> Database:
    db = Database()
    db.sql("CREATE TABLE t (c BIGINT)")
    db.sql("INSERT INTO t VALUES (1), (2), (3), (3), (4)")
    return db


class TestDatabaseMetrics:
    def test_statement_counters(self, db):
        db.sql("SELECT c FROM t")
        counters = db.metrics().export()["counters"]
        assert counters["statements"] >= 3  # DDL + insert + select
        assert counters["statements.select"] == 1
        assert counters["statements.ddl"] == 1
        assert counters["statements.insert"] == 1
        assert counters["query.rows_returned"] == 5

    def test_maintenance_counters(self, db):
        db.sql("INSERT INTO t VALUES (9)")
        db.sql("DELETE FROM t WHERE c = 2")
        counters = db.metrics().export()["counters"]
        assert counters["maintenance.appends"] == 2
        assert counters["maintenance.rows_appended"] == 6
        assert counters["maintenance.deletes"] == 1

    def test_patchindex_health_gauges(self, db):
        db.sql("CREATE PATCHINDEX pi ON t(c) TYPE UNIQUE")
        gauges = db.metrics().export()["gauges"]
        # Both occurrences of the duplicate 3 are patches (paper §IV-A).
        assert gauges["patchindex.pi.patch_count"] == 2
        assert gauges["patchindex.pi.patch_ratio"] == pytest.approx(0.4)
        # 40% exceptions vs the paper's 1/64 identifier/bitmap crossover.
        assert gauges["patchindex.pi.ratio_vs_crossover"] == pytest.approx(
            0.4 * 64
        )
        assert gauges["patchindex.pi.rebuilds"] == 0

    def test_profiled_query_metrics(self, db):
        db.sql("SELECT c FROM t WHERE c > 1", profile=True)
        exported = db.metrics().export()
        assert exported["counters"]["query.profiled"] == 1
        assert exported["histograms"]["query.seconds"]["count"] == 1

    def test_unprofiled_query_records_no_profile_metrics(self, db):
        db.sql("SELECT c FROM t")
        counters = db.metrics().export()["counters"]
        assert "query.profiled" not in counters

    def test_registries_are_per_database(self, db):
        other = Database()
        other.sql("CREATE TABLE u (x BIGINT)")
        assert "statements.select" not in other.metrics().export()["counters"]
