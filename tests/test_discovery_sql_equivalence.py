"""Property test: the paper's SQL-level NUC discovery query, executed by
this engine, always matches the vectorized discovery kernel.

This closes the loop the paper describes in §IV: "we can simply realize
the NUC discovery on SQL level" — the rendered query from
:func:`repro.core.discovery.nuc_discovery_sql` must compute the same
patch set as :func:`repro.core.discovery.discover_nuc_patches` on any
data, including NULLs and arbitrary duplicate structure.
"""

from hypothesis import given, settings, strategies as st

from repro import Database
from repro.core.discovery import discover_nuc_patches, nuc_discovery_sql


class TestSqlDiscoveryEquivalence:
    @given(
        st.lists(st.one_of(st.none(), st.integers(0, 8)), max_size=40),
        st.integers(1, 3),
    )
    @settings(max_examples=80, deadline=None)
    def test_matches_vectorized_kernel(self, values, partitions):
        db = Database()
        db.sql(f"CREATE TABLE tab (c BIGINT) PARTITIONS {partitions}")
        if values:
            rows = ", ".join(
                "(NULL)" if value is None else f"({value})" for value in values
            )
            db.sql(f"INSERT INTO tab VALUES {rows}")
        result = db.sql(nuc_discovery_sql("tab", "c"))
        via_sql = sorted(result.column("tid").to_pylist())
        via_kernel = discover_nuc_patches(
            db.table("tab").read_column("c")
        ).tolist()
        assert via_sql == via_kernel
