"""Unit tests for TableScan: batching, ranges, tid, partition boundaries."""

import pytest

from repro.errors import PlanError
from repro.exec.operators.scan import TID_COLUMN, TableScan, normalize_ranges
from repro.exec.parallel import morsels_for_table
from repro.exec.result import collect
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType


def make_table(n=20, partition_count=3, block_size=4):
    return Table.from_pydict(
        "t",
        Schema([Field("x", DataType.INT64)]),
        {"x": list(range(n))},
        partition_count=partition_count,
        block_size=block_size,
    )


class TestBasicScan:
    def test_full_scan_in_order(self):
        table = make_table()
        result = collect(TableScan(table, batch_size=4))
        assert result.column("x").to_pylist() == list(range(20))

    def test_batches_never_cross_partitions(self):
        table = make_table(n=10, partition_count=3)
        scan = TableScan(table, batch_size=100)
        scan.open()
        batch_ranges = []
        while True:
            batch = scan.next_batch()
            if batch is None:
                break
            batch_ranges.append(batch.contiguous_range)
        scan.close()
        partition_ranges = [p.rowid_range for p in table.partitions]
        for batch_range in batch_ranges:
            assert any(
                p_start <= batch_range[0] and batch_range[1] <= p_stop
                for p_start, p_stop in partition_ranges
            )

    def test_rowids_are_contiguous_tuple_ids(self):
        table = make_table()
        scan = TableScan(table, batch_size=6)
        scan.open()
        seen = []
        while True:
            batch = scan.next_batch()
            if batch is None:
                break
            assert batch.contiguous_range is not None
            seen.extend(batch.rowids.tolist())
        assert seen == list(range(20))

    def test_projection(self):
        table = Table.from_pydict(
            "t",
            Schema([Field("a", DataType.INT64), Field("b", DataType.INT64)]),
            {"a": [1, 2], "b": [3, 4]},
        )
        result = collect(TableScan(table, columns=["b"]))
        assert result.column_names == ("b",)

    def test_scan_before_open_raises(self):
        scan = TableScan(make_table())
        with pytest.raises(PlanError):
            scan.next_batch()


class TestTid:
    def test_tid_column(self):
        table = make_table(n=5, partition_count=2)
        result = collect(TableScan(table, with_tid=True))
        assert result.column(TID_COLUMN).to_pylist() == [0, 1, 2, 3, 4]

    def test_tid_collision_rejected(self):
        table = Table.from_pydict(
            "t", Schema([Field("tid", DataType.INT64)]), {"tid": [1]}
        )
        with pytest.raises(PlanError):
            TableScan(table, with_tid=True)


class TestScanRanges:
    def test_ranges_restrict_rows(self):
        table = make_table()
        result = collect(TableScan(table, scan_ranges=[(2, 5), (10, 12)]))
        assert result.column("x").to_pylist() == [2, 3, 4, 10, 11]

    def test_ranges_normalized(self):
        table = make_table()
        scan = TableScan(
            table, scan_ranges=[(10, 12), (2, 5), (4, 7), (-5, 1), (18, 99)]
        )
        # sorted, merged, clipped
        assert scan.scan_ranges == [(0, 1), (2, 7), (10, 12), (18, 20)]

    def test_empty_ranges(self):
        table = make_table()
        result = collect(TableScan(table, scan_ranges=[]))
        assert result.row_count == 0

    def test_range_crossing_partition_boundary(self):
        table = make_table(n=20, partition_count=2)  # boundary at 10
        result = collect(TableScan(table, scan_ranges=[(8, 13)]))
        assert result.column("x").to_pylist() == [8, 9, 10, 11, 12]

    def test_ranges_with_tid(self):
        table = make_table()
        result = collect(
            TableScan(table, scan_ranges=[(5, 7)], with_tid=True)
        )
        assert result.column(TID_COLUMN).to_pylist() == [5, 6]


class TestRescan:
    def test_operator_is_reexecutable(self):
        table = make_table(n=6)
        scan = TableScan(table)
        first = collect(scan)
        second = collect(scan)
        assert first.column("x").to_pylist() == second.column("x").to_pylist()


class TestNormalizeRanges:
    """Edge cases of the shared range normalizer (also used by the
    morsel dispatcher, so its invariants protect parallel plans too)."""

    def test_none_passes_through(self):
        assert normalize_ranges(None, 100) is None

    def test_overlapping_ranges_merge(self):
        assert normalize_ranges([(0, 10), (5, 15)], 100) == [(0, 15)]

    def test_adjacent_ranges_merge(self):
        assert normalize_ranges([(0, 10), (10, 20)], 100) == [(0, 20)]

    def test_contained_range_absorbed(self):
        assert normalize_ranges([(0, 20), (5, 10)], 100) == [(0, 20)]

    def test_negative_start_clipped(self):
        assert normalize_ranges([(-7, 5)], 100) == [(0, 5)]

    def test_stop_beyond_total_clipped(self):
        assert normalize_ranges([(90, 500)], 100) == [(90, 100)]

    def test_inverted_range_dropped(self):
        assert normalize_ranges([(10, 5)], 100) == []

    def test_empty_range_dropped(self):
        assert normalize_ranges([(5, 5), (7, 9)], 100) == [(7, 9)]

    def test_fully_out_of_bounds_dropped(self):
        assert normalize_ranges([(-10, -1), (100, 200)], 100) == []

    def test_unsorted_input_sorted(self):
        assert normalize_ranges([(30, 40), (0, 10)], 100) == [
            (0, 10),
            (30, 40),
        ]

    def test_disjoint_ranges_stay_separate(self):
        assert normalize_ranges([(0, 5), (7, 9)], 100) == [(0, 5), (7, 9)]


class TestMorselBoundaries:
    """Morsel boundaries fall between rowids — never inside one, and
    never splitting a rowid between two fragments' batches."""

    def test_every_rowid_scanned_exactly_once_across_morsels(self):
        table = make_table(n=50, partition_count=3, block_size=4)
        seen = []
        for morsel in morsels_for_table(table, None, morsel_size=8):
            result = collect(
                TableScan(table, scan_ranges=list(morsel.ranges))
            )
            seen.extend(result.column("x").to_pylist())
        assert seen == list(range(50))

    def test_batches_within_a_morsel_stay_contiguous(self):
        table = make_table(n=40, partition_count=2, block_size=4)
        for morsel in morsels_for_table(table, None, morsel_size=8):
            scan = TableScan(table, scan_ranges=list(morsel.ranges),
                             batch_size=4)
            scan.open()
            while True:
                batch = scan.next_batch()
                if batch is None:
                    break
                assert batch.contiguous_range is not None
                start, stop = batch.contiguous_range
                assert batch.rowids.tolist() == list(range(start, stop))
            scan.close()
