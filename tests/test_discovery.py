"""Unit and property tests for NUC/NSC discovery.

Properties verified against the formal validators of
:mod:`repro.core.constraints`:

- NUC discovery always satisfies NUC1 + NUC2 and is minimal (the patch
  set is exactly the duplicated-or-NULL rows).
- NSC discovery always satisfies NSC1 and is minimal (cardinality
  equals ``n - LIS(valid values)``).
- Table-level discovery honours the paper's partition semantics.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.constraints import check_nsc, check_nuc
from repro.core.discovery import (
    discover,
    discover_nsc_patches,
    discover_nuc_patches,
    discover_table_nsc,
    discover_table_nuc,
    nuc_discovery_sql,
)
from repro.core.lis import longest_sorted_subsequence_length
from repro.storage.column import ColumnVector
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType

int_or_none = st.one_of(st.none(), st.integers(0, 20))


def col(items):
    return ColumnVector.from_pylist(DataType.INT64, items)


class TestNucDiscovery:
    def test_paper_figure2_example(self):
        # Values 3 and 6 occur twice: all four occurrences are patches.
        patches = discover_nuc_patches(col([1, 3, 4, 3, 2, 6, 7, 6]))
        assert patches.tolist() == [1, 3, 5, 7]

    def test_all_unique(self):
        assert discover_nuc_patches(col([5, 2, 9])).tolist() == []

    def test_all_duplicates(self):
        assert discover_nuc_patches(col([1, 1, 1])).tolist() == [0, 1, 2]

    def test_nulls_are_patches(self):
        assert discover_nuc_patches(col([1, None, 2, None])).tolist() == [1, 3]

    def test_empty(self):
        assert discover_nuc_patches(col([])).tolist() == []

    def test_strings(self):
        column = ColumnVector.from_pylist(
            DataType.STRING, ["a", "b", "a", None]
        )
        assert discover_nuc_patches(column).tolist() == [0, 2, 3]

    @given(st.lists(int_or_none, max_size=80))
    @settings(max_examples=150)
    def test_satisfies_nuc_and_minimal(self, items):
        column = col(items)
        patches = discover_nuc_patches(column)
        assert check_nuc(column, patches)
        # Minimality: exactly the duplicated-or-null positions.
        counts: dict[int, int] = {}
        for item in items:
            if item is not None:
                counts[item] = counts.get(item, 0) + 1
        expected = [
            position
            for position, item in enumerate(items)
            if item is None or counts[item] > 1
        ]
        assert patches.tolist() == expected


class TestNscDiscovery:
    def test_minimal_patch_count(self):
        column = col([1, 3, 4, 3, 2, 6, 7, 6])
        patches = discover_nsc_patches(column)
        assert len(patches) == 3

    def test_sorted_input(self):
        assert discover_nsc_patches(col([1, 2, 2, 9])).tolist() == []

    def test_nulls_are_patches(self):
        patches = discover_nsc_patches(col([1, None, 2]))
        assert 1 in patches.tolist()

    def test_descending(self):
        patches = discover_nsc_patches(col([9, 5, 7, 3]), ascending=False)
        assert len(patches) == 1

    @given(st.lists(int_or_none, max_size=80), st.booleans(), st.booleans())
    @settings(max_examples=150)
    def test_satisfies_nsc_and_minimal(self, items, ascending, strict):
        column = col(items)
        patches = discover_nsc_patches(column, ascending=ascending, strict=strict)
        assert check_nsc(column, patches, ascending=ascending, strict=strict)
        valid = [item for item in items if item is not None]
        lis = longest_sorted_subsequence_length(
            np.array(valid, dtype=np.int64), ascending=ascending, strict=strict
        )
        assert len(patches) == len(items) - lis


class TestTableLevelDiscovery:
    def make_table(self, values, partition_count):
        return Table.from_pydict(
            "t",
            Schema([Field("c", DataType.INT64)]),
            {"c": values},
            partition_count=partition_count,
        )

    def test_nuc_grouping_is_global(self):
        # 5 appears once in each partition: both occurrences are patches
        # even though each partition sees it only once locally.
        table = self.make_table([5, 1, 2, 5, 3, 4], partition_count=2)
        result = discover_table_nuc(table, "c")
        assert result.global_rowids().tolist() == [0, 3]
        assert result.per_partition_rowids[0].tolist() == [0]
        assert result.per_partition_rowids[1].tolist() == [0]  # local id

    def test_nsc_partition_scope(self):
        # Each partition is locally sorted; globally the sequence drops
        # at the partition boundary.  Partition-scope discovery (the
        # paper's §VI-A2 design) finds 0 patches.
        table = self.make_table([10, 20, 30, 1, 2, 3], partition_count=2)
        result = discover_table_nsc(table, "c", scope="partition")
        assert result.patch_count == 0

    def test_nsc_global_scope(self):
        # Global scope (this engine's default) sees the drop at the
        # partition boundary and patches one side of it.
        table = self.make_table([10, 20, 30, 1, 2, 3], partition_count=2)
        result = discover_table_nsc(table, "c", scope="global")
        assert result.patch_count == 3
        # Patches are still stored partition-locally.
        assert len(result.per_partition_rowids) == 2

    def test_nsc_unknown_scope(self):
        table = self.make_table([1, 2], partition_count=1)
        with pytest.raises(ValueError):
            discover_table_nsc(table, "c", scope="cluster")

    def test_exception_rate_and_satisfies(self):
        table = self.make_table([1, 1, 2, 3], partition_count=1)
        result = discover_table_nuc(table, "c")
        assert result.exception_rate == 0.5
        assert result.satisfies(0.5)
        assert not result.satisfies(0.49)

    def test_discover_dispatch(self):
        table = self.make_table([1, 2, 2], partition_count=1)
        assert discover(table, "c", "unique").patch_count == 2
        assert discover(table, "c", "sorted").patch_count == 0


class TestDiscoverySql:
    def test_sql_shape(self):
        sql = nuc_discovery_sql("tab", "c")
        assert "left outer join" in sql
        assert "group by c" in sql
        assert "having count(*) > 1" in sql
        assert "tab.c is null" in sql
