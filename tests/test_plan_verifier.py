"""Seeded-mutation tests for the plan verifier (repro.check).

Each mutation takes a plan shape the planner could legitimately
produce, breaks exactly one invariant the optimizer relies on, and
asserts the verifier rejects it with a typed
:class:`~repro.errors.PlanInvariantError` naming the violated rule.
Clean planner output must keep verifying, so the corpus brackets the
verifier from both sides: no false negatives on the mutations, no
false positives on real plans.
"""

import pytest

from repro import Database
from repro.check import OrderProperty, verify_plan
from repro.core.patch_index import PatchIndex, PatchIndexMode
from repro.errors import PlanInvariantError
from repro.exec.expressions import ColumnRef, Comparison, Literal
from repro.exec.operators import (
    AggregateSpec,
    Distinct,
    Filter,
    HashAggregate,
    HashJoin,
    Limit,
    MergeJoin,
    MergeUnion,
    PatchSelect,
    PatchSelectMode,
    Sort,
    SortKey,
    TableScan,
    TopN,
    UnionAll,
)
from repro.exec.parallel import Exchange, Morsel, morsels_for_table
from repro.plan.optimizer import OptimizerOptions
from repro.storage.schema import Field, Schema
from repro.storage.table import Table
from repro.types import DataType

EXCLUDE = PatchSelectMode.EXCLUDE_PATCHES
USE = PatchSelectMode.USE_PATCHES


def make_table(name="t", n=256, partition_count=2):
    """Nearly-sorted column s, nearly-unique column u, group column g."""
    s = list(range(n))
    s[10], s[100] = 0, 3  # two sorted-order exceptions
    u = list(range(n))
    u[5] = u[40] = u[90] = 7  # a duplicated value
    schema = Schema(
        [
            Field("s", DataType.INT64),
            Field("u", DataType.INT64),
            Field("g", DataType.INT64),
        ]
    )
    return Table.from_pydict(
        name,
        schema,
        {"s": s, "u": u, "g": [i % 4 for i in range(n)]},
        partition_count=partition_count,
    )


def make_dim(n=32):
    """A single-partition dimension table with distinct column names."""
    return Table.from_pydict(
        "dim",
        Schema([Field("k", DataType.INT64)]),
        {"k": list(range(n))},
    )


@pytest.fixture
def table() -> Table:
    return make_table()


@pytest.fixture
def nsc(table) -> PatchIndex:
    return PatchIndex.create("nsc_s", table, "s", "sorted")


@pytest.fixture
def nuc(table) -> PatchIndex:
    return PatchIndex.create("nuc_u", table, "u", "unique")


def rejects(rule: str, operator) -> PlanInvariantError:
    with pytest.raises(PlanInvariantError) as excinfo:
        verify_plan(operator)
    assert excinfo.value.rule == rule
    assert f"[{rule}]" in str(excinfo.value)
    return excinfo.value


# -- clean plans keep verifying ------------------------------------------------


class TestCleanPlans:
    def test_exclude_patchselect_proves_global_order(self, table, nsc):
        props = verify_plan(PatchSelect(TableScan(table), nsc, EXCLUDE))
        assert props.ordering == OrderProperty((SortKey("s", True),), "global")

    def test_sort_establishes_global_order(self, table):
        props = verify_plan(Sort(TableScan(table), [SortKey("u", False)]))
        assert props.ordering == OrderProperty((SortKey("u", False),))

    def test_canonical_nsc_sort_rewrite(self, table, nsc):
        keys = [SortKey("s", True)]
        plan = MergeUnion(
            PatchSelect(TableScan(table), nsc, EXCLUDE),
            Sort(PatchSelect(TableScan(table), nsc, USE), keys),
            keys,
        )
        props = verify_plan(plan)
        assert props.ordering == OrderProperty(tuple(keys))

    def test_canonical_nuc_distinct_rewrite(self, table, nuc):
        plan = Distinct(
            UnionAll(
                [
                    PatchSelect(TableScan(table), nuc, EXCLUDE),
                    Distinct(PatchSelect(TableScan(table), nuc, USE)),
                ]
            )
        )
        assert verify_plan(plan).ordering is None

    def test_exchange_preserves_template_order(self, table, nsc):
        def build(ranges):
            return PatchSelect(
                TableScan(table, scan_ranges=ranges), nsc, EXCLUDE
            )

        plan = Exchange(build, build(None), morsels_for_table(table), 2)
        props = verify_plan(plan)
        assert props.ordering == OrderProperty((SortKey("s", True),), "global")

    def test_planner_output_verifies_end_to_end(self):
        db = Database()
        db.sql("CREATE TABLE v (x BIGINT) PARTITIONS 2")
        db.sql(
            "INSERT INTO v VALUES "
            + ", ".join(f"({i})" for i in [3, 1, 2, 2, 5, 9, 7, 4])
        )
        db.sql("CREATE PATCHINDEX vx ON v(x) TYPE UNIQUE")
        result = db.sql(
            "SELECT DISTINCT x FROM v",
            optimizer_options=OptimizerOptions(always_rewrite=True),
        )
        assert sorted(result.column("x").to_pylist()) == [1, 2, 3, 4, 5, 7, 9]

    def test_explain_reports_verified(self):
        db = Database()
        db.sql("CREATE TABLE e (x BIGINT)")
        db.sql("INSERT INTO e VALUES (1), (2)")
        assert "verified: ok" in db.explain("SELECT x FROM e ORDER BY x")


# -- patchselect-placement / patch-design --------------------------------------


class TestPatchSelectRules:
    def test_patchselect_above_filter(self, table, nsc):
        plan = PatchSelect(
            Filter(TableScan(table), Comparison(">", ColumnRef("s"), Literal(3))),
            nsc,
            EXCLUDE,
            enforce_scan_child=False,
        )
        rejects("patchselect-placement", plan)

    def test_patchselect_on_wrong_table(self, table, nsc):
        plan = PatchSelect(TableScan(table), nsc, EXCLUDE)
        plan.child = TableScan(make_table(name="other"))
        rejects("patchselect-placement", plan)

    def test_pinned_mode_contradicts_design(self, table, nsc):
        nsc.mode = PatchIndexMode.BITMAP  # carries identifier patch sets
        rejects("patch-design", PatchSelect(TableScan(table), nsc, EXCLUDE))

    def test_auto_design_must_honor_crossover(self, table, monkeypatch):
        n = table.row_count
        # Duplicate half the column: AUTO resolves to bitmap patches.
        for rowid in range(0, n, 2):
            table.update_rowid(rowid, "g", 1)
        heavy = PatchIndex.create("heavy_g", table, "g", "unique")
        assert heavy.design == "bitmap"
        # Mutation: the observed rate says identifier-side of 1/64.
        monkeypatch.setattr(
            PatchIndex, "exception_rate", property(lambda self: 0.0)
        )
        rejects("patch-design", PatchSelect(TableScan(table), heavy, EXCLUDE))

    def test_mixed_designs_across_partitions(self, table, nsc, monkeypatch):
        class _FakeSet:
            def __init__(self, design):
                self.design = design

        monkeypatch.setattr(
            nsc,
            "partition_patches",
            lambda pid: _FakeSet("identifier" if pid == 0 else "bitmap"),
        )
        rejects("patch-design", PatchSelect(TableScan(table), nsc, EXCLUDE))


# -- patchselect-partitioning / nuc-use-distinct -------------------------------


class TestPartitioningRules:
    def test_both_branches_exclude(self, table, nsc):
        plan = UnionAll(
            [
                PatchSelect(TableScan(table), nsc, EXCLUDE),
                PatchSelect(TableScan(table), nsc, EXCLUDE),
            ]
        )
        rejects("patchselect-partitioning", plan)

    def test_both_branches_use(self, table, nuc):
        plan = UnionAll(
            [
                Distinct(PatchSelect(TableScan(table), nuc, USE)),
                Distinct(PatchSelect(TableScan(table), nuc, USE)),
            ]
        )
        rejects("patchselect-partitioning", plan)

    def test_branches_cover_different_row_sets(self, table, nuc):
        plan = UnionAll(
            [
                PatchSelect(
                    TableScan(table, scan_ranges=[(0, 32)]), nuc, EXCLUDE
                ),
                Distinct(PatchSelect(TableScan(table), nuc, USE)),
            ]
        )
        rejects("patchselect-partitioning", plan)

    def test_nuc_use_branch_missing_distinct(self, table, nuc):
        plan = UnionAll(
            [
                PatchSelect(TableScan(table), nuc, EXCLUDE),
                PatchSelect(TableScan(table), nuc, USE),
            ]
        )
        rejects("nuc-use-distinct", plan)

    def test_distinct_on_wrong_branch(self, table, nuc):
        plan = UnionAll(
            [
                Distinct(PatchSelect(TableScan(table), nuc, EXCLUDE)),
                PatchSelect(TableScan(table), nuc, USE),
            ]
        )
        rejects("nuc-use-distinct", plan)


# -- merge-input-order ---------------------------------------------------------


class TestMergeRules:
    def test_merge_union_right_input_unsorted(self, table, nsc):
        keys = [SortKey("s", True)]
        plan = MergeUnion(
            PatchSelect(TableScan(table), nsc, EXCLUDE),
            PatchSelect(TableScan(table), nsc, USE),  # dropped Sort
            keys,
        )
        rejects("merge-input-order", plan)

    def test_partition_local_order_is_not_global(self, table):
        local = PatchIndex.create(
            "nsc_local", table, "s", "sorted", scope="partition"
        )
        keys = [SortKey("s", True)]
        plan = MergeUnion(
            PatchSelect(TableScan(table), local, EXCLUDE),
            Sort(PatchSelect(TableScan(table), local, USE), keys),
            keys,
        )
        rejects("merge-input-order", plan)

    def test_merge_join_unsorted_without_runtime_guard(self, table):
        plan = MergeJoin(
            TableScan(table),  # no proven order on the left
            Sort(TableScan(make_dim()), [SortKey("k", True)]),
            "s",
            "k",
            check_sorted=False,
        )
        rejects("merge-input-order", plan)

    def test_merge_join_runtime_guard_accepted(self, table):
        plan = MergeJoin(
            TableScan(table),
            Sort(TableScan(make_dim()), [SortKey("k", True)]),
            "s",
            "k",
            check_sorted=True,
        )
        verify_plan(plan)


# -- limit-order ---------------------------------------------------------------


class TestLimitOrderRules:
    def test_sort_above_limit(self, table):
        plan = Sort(Limit(TableScan(table), 5), [SortKey("s", True)])
        rejects("limit-order", plan)

    def test_topn_above_topn(self, table):
        keys = [SortKey("s", True)]
        plan = TopN(TopN(TableScan(table), keys, 5), keys, 3)
        rejects("limit-order", plan)

    def test_limit_below_distinct(self, table):
        rejects("limit-order", Distinct(Limit(TableScan(table), 5)))

    def test_limit_below_union_branch(self, table):
        plan = UnionAll([Limit(TableScan(table), 5), TableScan(table)])
        rejects("limit-order", plan)


# -- exchange-ordering / scan-ranges -------------------------------------------


def _scan_factory(table):
    def build(ranges):
        return TableScan(table, scan_ranges=ranges)

    return build


class TestParallelRules:
    def test_shuffled_morsels(self, table):
        build = _scan_factory(table)
        morsels = list(reversed(morsels_for_table(table)))
        assert len(morsels) >= 2
        plan = Exchange(build, build(None), morsels, 2)
        rejects("exchange-ordering", plan)

    def test_overlapping_morsel_ranges(self, table):
        build = _scan_factory(table)
        plan = Exchange(
            build, build(None), [Morsel(((0, 16), (8, 32)))], 2
        )
        rejects("exchange-ordering", plan)

    def test_morsel_crossing_partition_boundary(self, table):
        build = _scan_factory(table)
        plan = Exchange(
            build, build(None), [Morsel(((0, table.row_count),))], 2
        )
        rejects("exchange-ordering", plan)

    def test_corrupted_parallelism(self, table):
        build = _scan_factory(table)
        plan = Exchange(build, build(None), morsels_for_table(table), 2)
        plan.parallelism = 0  # post-construction corruption
        rejects("exchange-ordering", plan)

    def test_inverted_scan_range(self, table):
        plan = TableScan(table)
        plan.scan_ranges = [(16, 4)]  # post-construction corruption
        rejects("scan-ranges", plan)

    def test_scan_range_beyond_table(self, table):
        plan = TableScan(table)
        plan.scan_ranges = [(0, table.row_count + 8)]
        rejects("scan-ranges", plan)


# -- expression-binding / union-types ------------------------------------------


class TestBindingRules:
    def test_filter_references_unknown_column(self, table):
        plan = Filter(
            TableScan(table), Comparison(">", ColumnRef("nope"), Literal(1))
        )
        rejects("expression-binding", plan)

    def test_sort_key_missing_from_schema(self, table):
        plan = Sort(TableScan(table, columns=["s"]), [SortKey("u", True)])
        rejects("expression-binding", plan)

    def test_hash_join_probe_key_missing(self, table):
        plan = HashJoin(
            TableScan(table, columns=["s"]), TableScan(make_dim()), "s", "k"
        )
        plan.probe_key = "u"  # post-construction corruption
        rejects("expression-binding", plan)

    def test_aggregate_over_unknown_column(self, table):
        plan = HashAggregate(
            TableScan(table), ["g"], [AggregateSpec("min", "s", "lo")]
        )
        plan.child = TableScan(table, columns=["g"])
        rejects("expression-binding", plan)

    def test_union_branches_disagree_on_names(self, table):
        other = Table.from_pydict(
            "o",
            Schema([Field("x", DataType.INT64)]),
            {"x": [1, 2, 3]},
        )
        plan = UnionAll(
            [TableScan(table, columns=["s"]), TableScan(other)]
        )
        rejects("union-types", plan)
