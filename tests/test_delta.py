"""Unit tests for the delta layer: ops, payloads, checksums, stats."""

import numpy as np
import pytest

from repro.core.delta import (
    DeltaOp,
    PatchDelta,
    add_op,
    apply_ops,
    delta_checksum,
    extend_op,
    invalidate_op,
    remap_op,
    remove_op,
)
from repro.core.maintenance import MaintenanceStats
from repro.core.patches import PatchSet
from repro.errors import StorageError


def build(design, rowids, row_count):
    return PatchSet.build(np.asarray(rowids, dtype=np.int64), row_count, design)


class TestDeltaOps:
    def test_helpers_normalize_rowids(self):
        op = extend_op(2, 10, [7, np.int64(9)])
        assert op.op == "extend"
        assert op.partition_id == 2
        assert op.row_count == 10
        assert op.rowids == (7, 9)
        assert all(isinstance(r, int) for r in op.rowids)

    def test_op_json_round_trip(self):
        for op in (
            extend_op(0, 5, [3, 4]),
            add_op(1, [2]),
            remove_op(0, [0, 1]),
            remap_op(3, [5, 9]),
            invalidate_op(),
        ):
            assert DeltaOp.from_json(op.to_json()) == op

    def test_invalidate_json_omits_rowids(self):
        raw = invalidate_op().to_json()
        assert raw == {"op": "invalidate"}

    def test_unknown_op_rejected(self):
        with pytest.raises(StorageError, match="unknown delta op"):
            DeltaOp.from_json({"op": "promote"})


class TestApplyOps:
    @pytest.mark.parametrize("design", ["identifier", "bitmap"])
    def test_extend_add_remove(self, design):
        patches = [build(design, [1], 4)]
        apply_ops(patches, [extend_op(0, 7, [5, 6])])
        assert patches[0].row_count == 7
        assert patches[0].rowids().tolist() == [1, 5, 6]
        apply_ops(patches, [add_op(0, [3]), remove_op(0, [1, 6])])
        assert patches[0].rowids().tolist() == [3, 5]

    @pytest.mark.parametrize("design", ["identifier", "bitmap"])
    def test_remap_renumbers_survivors(self, design):
        patches = [build(design, [1, 4, 5], 6)]
        # Deleting rowids 1 and 3 drops patch 1 and shifts 4,5 -> 2,3.
        apply_ops(patches, [remap_op(0, [1, 3])])
        assert patches[0].row_count == 4
        assert patches[0].rowids().tolist() == [2, 3]

    def test_ops_target_their_partition(self):
        patches = [build("identifier", [], 3), build("identifier", [], 3)]
        apply_ops(patches, [add_op(1, [2])])
        assert patches[0].patch_count() == 0
        assert patches[1].rowids().tolist() == [2]

    def test_out_of_range_partition_rejected(self):
        patches = [build("identifier", [], 3)]
        with pytest.raises(StorageError, match="partition 1 of 1"):
            apply_ops(patches, [add_op(1, [0])])

    def test_invalidate_cannot_be_applied(self):
        patches = [build("identifier", [], 3)]
        with pytest.raises(StorageError, match="rebuilt from data"):
            apply_ops(patches, [invalidate_op()])


class TestPatchDeltaPayload:
    def delta(self):
        return PatchDelta(
            index_name="pi",
            table_name="t",
            event="append",
            ops=(extend_op(0, 8, [6, 7]), remove_op(0, [1])),
            rows=3,
            demoted=1,
        )

    def test_round_trip_preserves_everything(self):
        payload = self.delta().to_payload(applies_to=42)
        restored, applies_to = PatchDelta.from_payload(payload)
        assert restored == self.delta()
        assert applies_to == 42

    def test_round_trip_survives_json(self):
        import json

        payload = json.loads(json.dumps(self.delta().to_payload(7)))
        restored, applies_to = PatchDelta.from_payload(payload)
        assert restored == self.delta()
        assert applies_to == 7

    def test_none_applies_to_round_trips(self):
        _, applies_to = PatchDelta.from_payload(self.delta().to_payload(None))
        assert applies_to is None

    def test_tampered_payload_fails_checksum(self):
        payload = self.delta().to_payload(42)
        payload["rows"] = 99
        with pytest.raises(StorageError, match="checksum mismatch"):
            PatchDelta.from_payload(payload)

    def test_missing_checksum_rejected(self):
        payload = self.delta().to_payload(42)
        del payload["checksum"]
        with pytest.raises(StorageError, match="checksum mismatch"):
            PatchDelta.from_payload(payload)

    def test_non_dict_payload_rejected(self):
        with pytest.raises(StorageError, match="malformed"):
            PatchDelta.from_payload("not a dict")

    def test_unknown_event_rejected(self):
        with pytest.raises(StorageError, match="unknown delta event"):
            PatchDelta(index_name="pi", table_name="t", event="merge")

    def test_checksum_is_canonical(self):
        body = {"b": 1, "a": [2, 3]}
        assert delta_checksum(body) == delta_checksum({"a": [2, 3], "b": 1})

    def test_invalidates_property(self):
        marker = PatchDelta(
            index_name="pi",
            table_name="t",
            event="rebuild",
            ops=(invalidate_op(),),
        )
        assert marker.invalidates
        assert not self.delta().invalidates

    def test_patch_counters(self):
        delta = self.delta()
        assert delta.patches_added() == 2
        assert delta.patches_removed() == 1


class TestRecordDeltaStats:
    def test_append_and_update_accounting(self):
        from repro.core.delta import record_delta_stats

        stats = MaintenanceStats()
        record_delta_stats(
            stats,
            PatchDelta(
                index_name="pi",
                table_name="t",
                event="append",
                ops=(extend_op(0, 10, [8, 9]),),
                rows=4,
            ),
        )
        record_delta_stats(
            stats,
            PatchDelta(
                index_name="pi",
                table_name="t",
                event="update",
                ops=(remove_op(0, [8]),),
                rows=1,
                demoted=0,
            ),
        )
        assert stats.appends_handled == 1
        assert stats.updates_handled == 1
        assert stats.rows_appended == 4
        assert stats.patches_added == 2
        assert stats.patches_removed == 1

    def test_stats_payload_round_trip(self):
        stats = MaintenanceStats(appends_handled=3, patches_added=5)
        restored = MaintenanceStats.from_payload(stats.to_payload())
        assert restored.appends_handled == 3
        assert restored.patches_added == 5
