"""Dashboard workload: the paper's motivating use case (§I, Figure 1).

Dashboard tools generate large query graphs where "each subtree is a
distinct query on an arbitrary column of the database" — the values
feed drop-down selectors and controllers.  This example builds a
retail-ish table with several nearly unique columns, lets the
self-management advisor define PatchIndexes, and runs the distinct
queries a dashboard generator would emit, comparing runtimes with and
without the indexes.

Run:  python examples/dashboard_queries.py
"""

import numpy as np

import repro
from repro import DataType, Field, Schema
from repro.bench.harness import measure
from repro.core.advisor import ConstraintAdvisor
from repro.plan.optimizer import OptimizerOptions
from repro.storage.column import ColumnVector

ROWS = 100_000
rng = np.random.default_rng(2024)


def nearly_unique(n: int, duplicate_rate: float, offset: int) -> np.ndarray:
    values = rng.permutation(n).astype(np.int64) + offset
    n_dups = int(n * duplicate_rate)
    if n_dups:
        positions = rng.choice(n, size=n_dups, replace=False)
        values[positions] = values[positions[0]]
    return values


db = repro.connect()
schema = Schema(
    [
        Field("invoice_no", DataType.INT64, nullable=False),
        Field("customer_ref", DataType.INT64, nullable=False),
        Field("tracking_code", DataType.INT64, nullable=False),
        Field("region", DataType.STRING, nullable=False),
        Field("amount", DataType.FLOAT64, nullable=False),
    ]
)
table = db.create_table("sales", schema, partition_count=4)
regions = np.array(["north", "south", "east", "west"], dtype=object)
table.load_columns(
    {
        "invoice_no": ColumnVector(DataType.INT64, nearly_unique(ROWS, 0.002, 0)),
        "customer_ref": ColumnVector(
            DataType.INT64, nearly_unique(ROWS, 0.01, 10_000_000)
        ),
        "tracking_code": ColumnVector(
            DataType.INT64, nearly_unique(ROWS, 0.03, 20_000_000)
        ),
        "region": ColumnVector(
            DataType.STRING, regions[rng.integers(0, 4, ROWS)]
        ),
        "amount": ColumnVector(DataType.FLOAT64, rng.random(ROWS) * 500),
    }
)

print(f"Loaded {table.row_count} sales rows.\n")

# One self-management cycle: profile, propose, create.
advisor = ConstraintAdvisor(db, nuc_threshold=0.05, nsc_threshold=0.05)
proposals = advisor.analyze_table("sales")
print("Advisor proposals:")
for proposal in proposals:
    print(f"  {proposal.describe()}")
created = advisor.apply(proposals)
print(f"Created indexes: {created}\n")

# The dashboard's generated queries: one distinct selector per column.
dashboard_queries = [
    "SELECT DISTINCT invoice_no FROM sales",
    "SELECT DISTINCT customer_ref FROM sales",
    "SELECT DISTINCT tracking_code FROM sales",
    "SELECT COUNT(DISTINCT invoice_no) AS n FROM sales",
    "SELECT COUNT(DISTINCT tracking_code) AS n FROM sales",
]

print(f"{'query':55s} {'plain':>9s} {'patched':>9s}  speedup")
for query in dashboard_queries:
    plain = measure(
        lambda: db.sql(
            query, optimizer_options=OptimizerOptions(use_patch_indexes=False)
        )
    )
    patched = measure(lambda: db.sql(query))
    assert sorted(map(str, plain.result.to_pylist())) == sorted(
        map(str, patched.result.to_pylist())
    )
    print(
        f"{query:55s} {plain.milliseconds:7.1f}ms {patched.milliseconds:7.1f}ms "
        f"{plain.seconds / patched.seconds:8.2f}x"
    )
