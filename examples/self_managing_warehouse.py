"""A self-managing warehouse: discovery, recovery, and fact/dim joins.

End-to-end scenario over the TPC-DS-style subset:

1. load ``date_dim`` / ``catalog_sales`` / ``customer``;
2. run the constraint advisor — it finds the nearly sorted fact column
   and the nearly unique customer columns by itself;
3. run a fact ⋈ dimension join (the paper's §VII-A1 experiment) and a
   dashboard-style distinct query, showing the rewritten plans;
4. simulate a crash and recover the database from the WAL — patch data
   is *not* in the log; the indexes are re-discovered from the data.

Run:  python examples/self_managing_warehouse.py
"""

import tempfile
from pathlib import Path

from repro import Database
from repro.bench.harness import measure
from repro.core.advisor import ConstraintAdvisor
from repro.gen.tpcds import TpcdsGenerator, load_tpcds
from repro.plan.optimizer import OptimizerOptions

SALES_ROWS = 150_000
CUSTOMER_ROWS = 40_000
SEED = 99

wal_path = Path(tempfile.mkdtemp()) / "warehouse.wal"
db = Database(wal_path)
load_tpcds(
    db,
    catalog_sales_rows=SALES_ROWS,
    customer_rows=CUSTOMER_ROWS,
    partition_count=4,
    seed=SEED,
)
print(f"Loaded TPC-DS subset ({SALES_ROWS} sales, {CUSTOMER_ROWS} customers).\n")

# --- 1. self-management ----------------------------------------------------
advisor = ConstraintAdvisor(db, nuc_threshold=0.05, nsc_threshold=0.02)
proposals = advisor.analyze_table(
    "catalog_sales", columns=["cs_sold_date_sk", "cs_order_number"]
) + advisor.analyze_table(
    "customer", columns=["c_email_address", "c_customer_sk"]
)
print("Advisor proposals:")
for proposal in proposals:
    print(f"  {proposal.describe()}")
created = advisor.apply(proposals)
print(f"Created: {created}\n")

# --- 2. the paper's join experiment ------------------------------------------
join_query = (
    "SELECT COUNT(*) AS n FROM catalog_sales cs "
    "JOIN date_dim d ON cs.cs_sold_date_sk = d.d_date_sk"
)
plain = measure(
    lambda: db.sql(
        join_query, optimizer_options=OptimizerOptions(use_patch_indexes=False)
    )
)
patched = measure(lambda: db.sql(join_query))
assert plain.result.scalar() == patched.result.scalar()
print(
    f"fact-dim join: {plain.milliseconds:.1f}ms plain -> "
    f"{patched.milliseconds:.1f}ms patched "
    f"({plain.seconds / patched.seconds:.2f}x)"
)
print(db.explain(join_query).split("== physical plan ==")[0])

# --- 3. crash & recovery -------------------------------------------------------
answer_before = db.sql(
    "SELECT COUNT(DISTINCT c_email_address) AS n FROM customer"
).scalar()
del db  # "crash"


def reload_sales(table):
    generator = TpcdsGenerator(SEED)
    table.load_columns(
        generator.catalog_sales(SALES_ROWS, sold_date_exception_rate=0.005)
    )


def reload_customer(table):
    table.load_columns(TpcdsGenerator(SEED).customer(CUSTOMER_ROWS))


def reload_dates(table):
    table.load_columns(TpcdsGenerator(SEED).date_dim())


recovered = Database.recover(
    wal_path,
    {
        "catalog_sales": reload_sales,
        "customer": reload_customer,
        "date_dim": reload_dates,
    },
)
print("Recovered from WAL. Indexes rebuilt from data:")
for index in recovered.catalog.indexes():
    print(f"  {index.describe()}")
answer_after = recovered.sql(
    "SELECT COUNT(DISTINCT c_email_address) AS n FROM customer"
).scalar()
assert answer_before == answer_after
print(
    f"count(distinct c_email_address) = {answer_after} "
    "(identical before and after recovery)"
)
