"""Patch-aware compression: the paper's §VIII closing hypothesis.

"We plan to investigate on opportunities the PatchIndex offers for data
compression, potentially increasing compression ratios when treating
discovered set of patches separately."

This example compresses a nearly sorted event-id column three ways and
prints the ratios: the handful of out-of-order rows that a PatchIndex
already knows about are exactly the values that would otherwise force a
wide delta encoding on everyone else.

Run:  python examples/patch_aware_compression.py
"""

from repro.core.compression import compress_for, compress_sorted
from repro.core.patch_index import PatchIndex
from repro.gen.synthetic import synthetic_table

ROWS = 200_000

for rate in (0.001, 0.01, 0.05, 0.2):
    table = synthetic_table(
        "events", ROWS, sorted_exception_rate=rate, seed=int(rate * 1e4)
    )
    column = table.read_column("s")
    raw_bytes = ROWS * 8

    # The PatchIndex already holds the minimal exception set; the
    # compressor reuses it instead of re-discovering.
    index = PatchIndex.create("pi", table, "s", "sorted")
    index.detach()
    patched = compress_sorted(column, index.rowids())
    plain = compress_for(column)

    assert patched.decompress().to_pylist() == column.to_pylist()
    print(
        f"rate={rate:<6g} raw={raw_bytes / 1024:8.1f} KiB   "
        f"plain delta/FOR={plain.size_bytes() / 1024:8.1f} KiB "
        f"({raw_bytes / plain.size_bytes():5.1f}x)   "
        f"patch-aware={patched.size_bytes() / 1024:8.1f} KiB "
        f"({raw_bytes / patched.size_bytes():5.1f}x, "
        f"{index.patch_count} patches @ {patched.delta_width} bit deltas)"
    )

print(
    "\nThe plain encoder pays a wide bit width for every row because a "
    "few exception\njumps inflate the delta domain; storing the patches "
    "verbatim keeps the main\nstream at the narrow width the sorted "
    "majority actually needs."
)
