"""Quickstart: approximate constraints on unclean data in 60 lines.

Creates a table whose "order id" column is *nearly* unique (a data
integration glitch duplicated a few orders, and some ids are missing),
defines a PatchIndex over it, and shows how the count-distinct query is
rewritten and accelerated while returning exactly the same answer.

Run:  python examples/quickstart.py
"""

import repro

db = repro.connect()

db.sql("CREATE TABLE orders (order_id BIGINT, amount DOUBLE) PARTITIONS 2")

# Unclean data: order 1003 was imported twice, one id is NULL.
db.sql(
    "INSERT INTO orders VALUES "
    "(1001, 10.5), (1002, 7.0), (1003, 99.0), (1003, 99.0), "
    "(NULL, 3.25), (1004, 12.0), (1005, 8.5), (1006, 41.0)"
)

print("The data:")
print(db.sql("SELECT * FROM orders").pretty())
print()

# A strict UNIQUE constraint is impossible — but a *nearly unique
# column* is discoverable.  The PatchIndex records the violating rows
# (both copies of 1003 and the NULL) as patches.
db.sql("CREATE PATCHINDEX pi_orders ON orders(order_id) TYPE UNIQUE")
index = db.catalog.index("pi_orders")
print(f"Created: {index.describe()}")
print(f"Patch rowids: {index.rowids().tolist()}")
print()

# Queries benefit transparently: COUNT(DISTINCT ...) only has to
# deduplicate the patches; the rest of the column is known unique.
query = "SELECT COUNT(DISTINCT order_id) AS distinct_orders FROM orders"
print(f"Query: {query}")
print(db.sql(query).pretty())
print()

print("The rewritten plan (note the exclude/use PatchSelect branches):")
print(db.explain(query))
print()

# The index maintains itself under mutations: inserting a duplicate of
# an existing id demotes both occurrences to patches.
db.sql("INSERT INTO orders VALUES (1001, 10.5)")
print("After inserting a duplicate of order 1001:")
print(f"Patch rowids: {index.rowids().tolist()}")
print(db.sql(query).pretty())
print()

# EXPLAIN ANALYZE executes the query and annotates every operator with
# actual rows, wall time and patch-hit counters next to the estimates.
print(db.sql(f"EXPLAIN ANALYZE {query}").text())
print()

print("Engine metrics so far:")
print(db.metrics().to_text())
