"""Time-series co-sorting: multiple approximate sort keys on one table.

The paper's second motivating workload (§I): sensor/sales data arrives
roughly in timestamp order, and several other columns — auto-generated
ids, version counters, ship dates — are *nearly co-sorted* with the
insertion order.  Because PatchIndexes never touch the physical layout,
one table can carry several approximate sort keys at once, something a
physical sort key cannot offer (§VI-A1).

Run:  python examples/timeseries_sorting.py
"""

import numpy as np

import repro
from repro import DataType, Field, Schema
from repro.bench.harness import measure
from repro.plan.optimizer import OptimizerOptions
from repro.storage.column import ColumnVector

ROWS = 150_000
rng = np.random.default_rng(7)

# Events in arrival order: the timestamp is sorted except for a few
# late-arriving measurements; the reading id is nearly co-sorted (ids
# are assigned by the producing sensor, which occasionally retransmits);
# the battery level decays, i.e. is nearly sorted *descending*.
timestamp = np.cumsum(rng.integers(1, 4, ROWS)).astype(np.int64)
late = rng.choice(ROWS, ROWS // 200, replace=False)
timestamp[late] -= rng.integers(50, 500, len(late))

reading_id = np.arange(ROWS, dtype=np.int64) * 3
retransmit = rng.choice(ROWS, ROWS // 100, replace=False)
reading_id[retransmit] = rng.integers(0, 3 * ROWS, len(retransmit))

battery = np.linspace(100.0, 5.0, ROWS)
spikes = rng.choice(ROWS, ROWS // 150, replace=False)
battery[spikes] += rng.uniform(1, 20, len(spikes))  # brief recharges

db = repro.connect()
schema = Schema(
    [
        Field("ts", DataType.INT64, nullable=False),
        Field("reading_id", DataType.INT64, nullable=False),
        Field("battery", DataType.FLOAT64, nullable=False),
        Field("value", DataType.FLOAT64, nullable=False),
    ]
)
table = db.create_table("sensor", schema, partition_count=4)
table.load_columns(
    {
        "ts": ColumnVector(DataType.INT64, timestamp),
        "reading_id": ColumnVector(DataType.INT64, reading_id),
        "battery": ColumnVector(DataType.FLOAT64, battery),
        "value": ColumnVector(DataType.FLOAT64, rng.random(ROWS)),
    }
)

# Three approximate sort keys on one physical table.
db.sql("CREATE PATCHINDEX pi_ts ON sensor(ts) TYPE SORTED")
db.sql("CREATE PATCHINDEX pi_rid ON sensor(reading_id) TYPE SORTED")
db.create_patch_index(
    "pi_batt", "sensor", "battery", kind="sorted", ascending=False
)

print("Three approximate sort keys coexist on `sensor`:")
for index in db.catalog.indexes_on("sensor"):
    print(f"  {index.describe()}")
print()

queries = [
    "SELECT ts FROM sensor ORDER BY ts",
    "SELECT reading_id FROM sensor ORDER BY reading_id",
    "SELECT battery FROM sensor ORDER BY battery DESC",
]
print(f"{'query':50s} {'plain':>9s} {'patched':>9s}  speedup")
for query in queries:
    plain = measure(
        lambda: db.sql(
            query, optimizer_options=OptimizerOptions(use_patch_indexes=False)
        )
    )
    patched = measure(lambda: db.sql(query))
    name = patched.result.column_names[0]
    assert (
        patched.result.column(name).to_pylist()
        == plain.result.column(name).to_pylist()
    )
    print(
        f"{query:50s} {plain.milliseconds:7.1f}ms {patched.milliseconds:7.1f}ms "
        f"{plain.seconds / patched.seconds:8.2f}x"
    )

print()
print("Plan for the descending battery sort:")
print(db.explain("SELECT battery FROM sensor ORDER BY battery DESC"))
