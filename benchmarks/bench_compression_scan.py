"""Patch-aware segment compression: bytes on disk vs scan latency.

The headline acceptance of the RSEG2 format (paper §VIII outlook: the
PatchIndex as a compression aid): a nearly-sorted 1M-row int column
carrying an NSC PatchIndex at exception rate 0.001 must checkpoint to
segments **≥ 4× smaller** than the raw layout — the patch rowids let
the ``pfor`` codec store only the exceptions verbatim while the kept
values delta-pack at the clean-column rate — *without* giving the win
back at scan time: with the block cache warm, the encoded scan must be
at least as fast as the raw one.

Three variants are swept, cold (fresh connect, empty cache) and warm
(second run over the same connection):

- ``raw``          — ``encoding="raw"`` checkpoint, no cache;
- ``encoded``      — cost-based picker, cache disabled (pure decode);
- ``encoded+cache``— picker plus the shared LRU block cache.

The table carries a second, non-indexed payload column: recovery's
PatchIndex rebuild reads (and thereby materializes) the indexed column,
so it is the payload column whose scans exercise the decode-on-demand
path and the block cache.  Results (bytes, latencies, cache counters,
per-column encodings) land in ``BENCH_compression.json``.

Run:  PYTHONPATH=src python benchmarks/bench_compression_scan.py

Knobs: ``REPRO_BENCH_COMPRESSION_ROWS`` (default 1_000_000),
``REPRO_CACHE_BYTES`` (cache capacity for the cached variant).
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.bench.harness import measure
from repro.gen import sorted_with_exceptions
from repro.storage.column import ColumnVector
from repro.storage.database import Database
from repro.storage.schema import Field, Schema
from repro.types import DataType

ROWS = int(os.environ.get("REPRO_BENCH_COMPRESSION_ROWS", 1_000_000))
EXCEPTION_RATE = 0.001
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_compression.json"

QUERIES = (
    "SELECT SUM(v) AS total, COUNT(*) AS n FROM t",
    f"SELECT SUM(v) AS total FROM t "
    f"WHERE s BETWEEN {ROWS // 3} AND {ROWS // 3 + 5000}",
)

VARIANTS = (
    ("raw", "raw", 0),
    ("encoded", "auto", 0),
    ("encoded+cache", "auto", None),  # None → default / env capacity
)


def build(root: Path, encoding: str, cache_bytes: int | None) -> dict:
    """Create, index, checkpoint; return the checkpoint column detail."""
    database = Database(
        path=root,
        parallelism=1,
        sync=False,
        encoding=encoding,
        cache_bytes=cache_bytes,
    )
    table = database.create_table(
        "t",
        Schema([Field("s", DataType.INT64), Field("v", DataType.INT64)]),
        partition_count=4,
    )
    payload = np.random.default_rng(7).integers(
        0, 1000, size=ROWS, dtype=np.int64
    )
    table.load_columns(
        {
            "s": sorted_with_exceptions(ROWS, EXCEPTION_RATE, seed=20),
            "v": ColumnVector.from_numpy(DataType.INT64, payload),
        }
    )
    database.create_patch_index("pi_s", "t", "s", kind="sorted")
    info = database.checkpoint()
    truth = [database.sql(query).rows() for query in QUERIES]
    database.close()
    detail = info["table_details"]["t"]
    return {"detail": detail, "truth": truth}


def scan_latencies(
    root: Path, cache_bytes: int | None, truth: list
) -> tuple[float, float, dict | None, int]:
    """Cold and warm latency of the query set on a fresh connection."""
    database = Database(path=root, parallelism=1, cache_bytes=cache_bytes)

    def run_all():
        return [database.sql(query).rows() for query in QUERIES]

    cold = measure(run_all, repeats=1, warmup=0)
    warm = measure(run_all, repeats=5, warmup=1)
    mismatches = sum(
        1
        for run in (cold.result, warm.result)
        for got, want in zip(run, truth)
        if got != want
    )
    stats = database.cache_stats()
    database.close()
    return cold.seconds, warm.seconds, stats, mismatches


def main() -> int:
    results = {}
    failures = 0
    for name, encoding, cache_bytes in VARIANTS:
        root = Path(tempfile.mkdtemp(prefix="repro-bench-compression-"))
        try:
            built = build(root, encoding, cache_bytes)
            cold_s, warm_s, cache, mismatches = scan_latencies(
                root, cache_bytes, built["truth"]
            )
            failures += mismatches
            detail = built["detail"]
            results[name] = {
                "segment_bytes": detail["columns"]["s"]["segment_bytes"],
                "encodings": detail["columns"]["s"]["encodings"],
                "columns": detail["columns"],
                "encoded_ratio": detail["encoded_ratio"],
                "cold_s": cold_s,
                "warm_s": warm_s,
                "cache": cache,
                "identical_results": mismatches == 0,
            }
            print(
                f"{name:>14}  {results[name]['segment_bytes'] / 1e6:7.2f} MB  "
                f"cold {cold_s * 1e3:8.1f} ms  warm {warm_s * 1e3:8.1f} ms  "
                f"{'ok' if mismatches == 0 else 'MISMATCH'}"
            )
        finally:
            shutil.rmtree(root, ignore_errors=True)

    raw_bytes = results["raw"]["segment_bytes"]
    encoded_bytes = results["encoded"]["segment_bytes"]
    compression_x = raw_bytes / encoded_bytes if encoded_bytes else 0.0
    warm_ok = results["encoded+cache"]["warm_s"] <= results["raw"]["warm_s"]
    headline_ok = compression_x >= 4.0 and warm_ok and failures == 0
    print(
        f"compression {compression_x:.1f}x "
        f"(target >= 4.0), warm encoded+cache "
        f"{'<=' if warm_ok else '>'} raw -> "
        f"{'PASS' if headline_ok else 'FAIL'}"
    )

    payload = {
        "rows": ROWS,
        "exception_rate": EXCEPTION_RATE,
        "queries": list(QUERIES),
        "variants": results,
        "compression_x": compression_x,
        "warm_encoded_not_slower": warm_ok,
        "headline_ok": headline_ok,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    return 0 if headline_ok else 1


if __name__ == "__main__":
    sys.exit(main())
