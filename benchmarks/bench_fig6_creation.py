"""Figure 6 (paper §VII-B2): PatchIndex creation time vs exception rate.

Paper observations to reproduce:

- both physical designs behave near-identically (the creation cost is
  dominated by *computing* the exceptions, not inserting them);
- NSC creation is the sum of the longest-sorted-subsequence run, the
  exception construction and the insertion, with the LIS showing
  non-linear behaviour over the rate;
- NUC creation gets *faster* with more exceptions (more duplicates →
  fewer aggregation groups → cheaper grouping).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import measure
from repro.bench.reporting import format_series
from repro.core.patch_index import PatchIndex, PatchIndexMode
from repro.gen.synthetic import synthetic_table

from conftest import CREATE_ROWS, SWEEP_RATES


def _table_for(kind: str, rate: float):
    return synthetic_table(
        f"fig6_{kind}_{rate}",
        CREATE_ROWS,
        unique_exception_rate=rate if kind == "unique" else 0.0,
        sorted_exception_rate=rate if kind == "sorted" else 0.0,
        partition_count=4,
        seed=int(rate * 1000) + 23,
    )


def _create(table, kind: str, mode: PatchIndexMode) -> float:
    column = "u" if kind == "unique" else "s"
    # NUC creation is cheap enough to measure with warmup + repeats;
    # NSC creation (LIS-dominated, ~100x slower) gets single shots to
    # keep the sweep's wall time bounded, as the paper's figure does.
    repeats, warmup = (3, 1) if kind == "unique" else (2, 0)
    run = measure(
        lambda: PatchIndex.create(
            "pi", table, column, kind, mode=mode
        ).detach(),
        repeats=repeats,
        warmup=warmup,
    )
    return run.milliseconds


@pytest.fixture(scope="module")
def sweep(report):
    series = {
        "NUC identifier": [],
        "NUC bitmap": [],
        "NSC identifier": [],
        "NSC bitmap": [],
    }
    for rate in SWEEP_RATES:
        for kind in ("unique", "sorted"):
            table = _table_for(kind, rate)
            for mode in (PatchIndexMode.IDENTIFIER, PatchIndexMode.BITMAP):
                label = (
                    f"{'NUC' if kind == 'unique' else 'NSC'} "
                    f"{mode.value}"
                )
                series[label].append(_create(table, kind, mode))
    report(
        format_series(
            f"Figure 6: PatchIndex creation time vs exception rate "
            f"({CREATE_ROWS} rows; paper: designs similar, NUC decreasing, "
            "NSC dominated by the LIS)",
            "rate",
            SWEEP_RATES,
            series,
        )
    )
    return series


def test_fig6_sweep_and_shape(benchmark, sweep):
    table = _table_for("unique", 0.05)
    benchmark(
        lambda: PatchIndex.create(
            "pi", table, "u", "unique", mode=PatchIndexMode.BITMAP
        ).detach()
    )
    # Designs behave similarly for both constraint kinds.
    for kind in ("NUC", "NSC"):
        for ident, bitmap in zip(
            sweep[f"{kind} identifier"], sweep[f"{kind} bitmap"]
        ):
            assert 0.4 < ident / bitmap < 2.5, sweep
    # NUC creation never blows up with the rate (the paper reports a
    # decrease — fewer aggregation groups; at this scale the effect is
    # within noise, so assert the robust direction: the high-rate
    # median stays at or below the low-rate median with slack).
    def median(values):
        ordered = sorted(values)
        return ordered[len(ordered) // 2]

    nuc = sweep["NUC bitmap"]
    half = len(nuc) // 2
    assert median(nuc[half:]) < median(nuc[:half]) * 1.5, nuc


@pytest.mark.parametrize("kind", ["unique", "sorted"])
def test_creation_benchmark(benchmark, kind):
    table = _table_for(kind, 0.05)
    column = "u" if kind == "unique" else "s"
    benchmark(
        lambda: PatchIndex.create(
            "pi", table, column, kind, mode=PatchIndexMode.BITMAP
        ).detach()
    )
