"""Profiling overhead: disabled must be (near) free, enabled must be cheap.

The observability layer promises that a query which does not ask for a
profile executes the same operator bytecode as before the layer existed
— instrumentation is attached per query, opt-in, as instance
attributes.  This benchmark checks that promise and records it to
``BENCH_profile.json``:

- *baseline*: parse → bind → optimize → plan → collect by hand, with
  no metrics registry in the loop (the pre-observability code path);
- *disabled*: ``Database.sql(query)`` — the public path with profiling
  off (statement counters fire, no operator instrumentation);
- *enabled*: ``Database.sql(query, profile=True)`` — full per-operator
  timing, PatchSelect counters and cardinality feedback.

The concurrency sanitizer rides the same harness on a *durable* engine
(its instrumented locks sit on the block-cache and snapshot paths,
which a memory engine never exercises):

- *sanitize off*: ``REPRO_SANITIZE`` unset — ``make_lock`` hands out
  plain ``threading.Lock`` objects, so the knob must be (near) free;
- *sanitize on*: the same workload against a database built under
  ``REPRO_SANITIZE=1`` — order-graph checks, held-time histograms and
  the resource ledger all active.

Acceptance: disabled profiling overhead vs the baseline stays within
5%; the sanitize-off path stays within 10% of the durable baseline.

Run:  PYTHONPATH=src python benchmarks/bench_profile_overhead.py

Knobs: ``REPRO_BENCH_PROFILE_ROWS`` (default 200_000),
``REPRO_BENCH_PROFILE_REPEATS`` (default 9, best-of).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import numpy as np

from repro.bench.harness import measure
from repro.exec.result import collect
from repro.plan.optimizer import Optimizer
from repro.plan.physical import PhysicalPlanner
from repro.sql.binder import Binder
from repro.sql.parser import parse_statement
from repro.storage.column import ColumnVector
from repro.storage.database import Database
from repro.storage.schema import Field, Schema
from repro.types import DataType

ROWS = int(os.environ.get("REPRO_BENCH_PROFILE_ROWS", 200_000))
REPEATS = int(os.environ.get("REPRO_BENCH_PROFILE_REPEATS", 9))
DISABLED_BUDGET = 0.05  # acceptance: <= 5% overhead with profiling off
SANITIZE_OFF_BUDGET = 0.10  # acceptance: <= 10% with the knob off
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_profile.json"

QUERY = "SELECT COUNT(DISTINCT c) AS n FROM t WHERE c < {limit}"


def build_database(rows: int) -> Database:
    rng = np.random.default_rng(31)
    values = rng.permutation(rows).astype(np.int64)
    duplicates = max(1, rows // 1000)
    positions = rng.choice(rows, duplicates, replace=False)
    values[positions] = values[rng.integers(0, rows, duplicates)]
    database = Database(parallelism=1)  # serial: measure pure overhead
    table = database.create_table(
        "t", Schema([Field("c", DataType.INT64)]), partition_count=4
    )
    table.load_columns({"c": ColumnVector(DataType.INT64, values)})
    database.create_patch_index("pi", "t", "c", kind="unique")
    return database


def build_durable(rows: int, root: str) -> Database:
    rng = np.random.default_rng(31)
    values = rng.permutation(rows).astype(np.int64)
    database = Database(path=root, mmap=True, sync=False, parallelism=1)
    table = database.create_table(
        "t", Schema([Field("c", DataType.INT64)]), partition_count=4
    )
    table.load_columns({"c": ColumnVector(DataType.INT64, values)})
    database.sql("CHECKPOINT")  # segment-backed scans go through the cache
    return database


def measure_sanitizer(query: str, repeats: int) -> dict:
    """Durable-engine sql() with the sanitizer off vs on."""
    import shutil
    import tempfile

    from repro.check import sanitize

    roots = [tempfile.mkdtemp(prefix="bench_sanitize_")
             for _ in range(2)]
    saved = os.environ.pop(sanitize.ENV_FLAG, None)
    try:
        off_db = build_durable(ROWS, roots[0])
        os.environ[sanitize.ENV_FLAG] = "1"
        on_db = build_durable(ROWS, roots[1])
        del os.environ[sanitize.ENV_FLAG]

        def durable_baseline():
            statement = parse_statement(query)
            logical = Optimizer(off_db.catalog).optimize(
                Binder(off_db.catalog).bind_select(statement)
            )
            return collect(
                PhysicalPlanner(parallelism=1, database=off_db).plan(logical)
            )

        def sanitize_off():
            return off_db.sql(query)

        def sanitize_on():
            os.environ[sanitize.ENV_FLAG] = "1"
            try:
                return on_db.sql(query)
            finally:
                del os.environ[sanitize.ENV_FLAG]

        expected = durable_baseline().scalar()
        assert sanitize_off().scalar() == expected
        assert sanitize_on().scalar() == expected

        # Interleave the three thunks round-robin: the durable runs are
        # disk- and cache-sensitive, and consecutive blocks would fold
        # machine drift into the ratios.
        import gc
        import time

        thunks = [durable_baseline, sanitize_off, sanitize_on]
        best = [float("inf")] * len(thunks)
        for thunk in thunks:
            for _ in range(2):
                thunk()
        for _ in range(repeats):
            for index, thunk in enumerate(thunks):
                gc.collect()
                started = time.perf_counter()
                thunk()
                best[index] = min(best[index], time.perf_counter() - started)
        baseline_s, off_s, on_s = best
        leaks = sanitize.check_balances()
        off_db.close()
        on_db.close()
    finally:
        if saved is not None:
            os.environ[sanitize.ENV_FLAG] = saved
        else:
            os.environ.pop(sanitize.ENV_FLAG, None)
        for root in roots:
            shutil.rmtree(root, ignore_errors=True)
    return {
        "durable_baseline_s": baseline_s,
        "off_s": off_s,
        "on_s": on_s,
        "off_overhead": off_s / baseline_s - 1.0,
        "on_overhead": on_s / baseline_s - 1.0,
        "off_budget": SANITIZE_OFF_BUDGET,
        "balanced": not leaks,
    }


def main() -> int:
    query = QUERY.format(limit=ROWS // 2)
    database = build_database(ROWS)
    print(f"rows={ROWS}  repeats={REPEATS}\n{query}")

    def baseline():
        statement = parse_statement(query)
        logical = Optimizer(database.catalog).optimize(
            Binder(database.catalog).bind_select(statement)
        )
        return collect(PhysicalPlanner(parallelism=1).plan(logical))

    def disabled():
        return database.sql(query)

    def enabled():
        return database.sql(query, profile=True)

    expected = baseline().scalar()
    assert disabled().scalar() == expected
    assert enabled().scalar() == expected

    baseline_run = measure(baseline, repeats=REPEATS, warmup=2)
    disabled_run = measure(disabled, repeats=REPEATS, warmup=2)
    enabled_run = measure(enabled, repeats=REPEATS, warmup=2)

    disabled_overhead = disabled_run.seconds / baseline_run.seconds - 1.0
    enabled_overhead = enabled_run.seconds / baseline_run.seconds - 1.0
    within_budget = disabled_overhead <= DISABLED_BUDGET

    print(
        f"baseline          {baseline_run.milliseconds:9.2f} ms\n"
        f"profiling off     {disabled_run.milliseconds:9.2f} ms "
        f"({disabled_overhead:+.1%})\n"
        f"profiling on      {enabled_run.milliseconds:9.2f} ms "
        f"({enabled_overhead:+.1%})\n"
        f"disabled budget   {DISABLED_BUDGET:.0%} -> "
        f"{'OK' if within_budget else 'EXCEEDED'}"
    )

    sanitize_stats = measure_sanitizer(query, REPEATS)
    sanitize_ok = (
        sanitize_stats["off_overhead"] <= SANITIZE_OFF_BUDGET
        and sanitize_stats["balanced"]
    )
    print(
        f"sanitize off      {sanitize_stats['off_s'] * 1000:9.2f} ms "
        f"({sanitize_stats['off_overhead']:+.1%})\n"
        f"sanitize on       {sanitize_stats['on_s'] * 1000:9.2f} ms "
        f"({sanitize_stats['on_overhead']:+.1%})\n"
        f"sanitize budget   {SANITIZE_OFF_BUDGET:.0%} off -> "
        f"{'OK' if sanitize_ok else 'EXCEEDED'}"
    )

    payload = {
        "rows": ROWS,
        "repeats": REPEATS,
        "query": query,
        "baseline_s": baseline_run.seconds,
        "disabled_s": disabled_run.seconds,
        "enabled_s": enabled_run.seconds,
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": enabled_overhead,
        "disabled_budget": DISABLED_BUDGET,
        "within_budget": within_budget,
        "sanitize": sanitize_stats,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    return 0 if within_budget and sanitize_ok else 1


if __name__ == "__main__":
    sys.exit(main())
