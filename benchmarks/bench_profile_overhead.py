"""Profiling overhead: disabled must be (near) free, enabled must be cheap.

The observability layer promises that a query which does not ask for a
profile executes the same operator bytecode as before the layer existed
— instrumentation is attached per query, opt-in, as instance
attributes.  This benchmark checks that promise and records it to
``BENCH_profile.json``:

- *baseline*: parse → bind → optimize → plan → collect by hand, with
  no metrics registry in the loop (the pre-observability code path);
- *disabled*: ``Database.sql(query)`` — the public path with profiling
  off (statement counters fire, no operator instrumentation);
- *enabled*: ``Database.sql(query, profile=True)`` — full per-operator
  timing, PatchSelect counters and cardinality feedback.

Acceptance: disabled overhead vs the baseline stays within 5%.

Run:  PYTHONPATH=src python benchmarks/bench_profile_overhead.py

Knobs: ``REPRO_BENCH_PROFILE_ROWS`` (default 200_000),
``REPRO_BENCH_PROFILE_REPEATS`` (default 9, best-of).
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import numpy as np

from repro.bench.harness import measure
from repro.exec.result import collect
from repro.plan.optimizer import Optimizer
from repro.plan.physical import PhysicalPlanner
from repro.sql.binder import Binder
from repro.sql.parser import parse_statement
from repro.storage.column import ColumnVector
from repro.storage.database import Database
from repro.storage.schema import Field, Schema
from repro.types import DataType

ROWS = int(os.environ.get("REPRO_BENCH_PROFILE_ROWS", 200_000))
REPEATS = int(os.environ.get("REPRO_BENCH_PROFILE_REPEATS", 9))
DISABLED_BUDGET = 0.05  # acceptance: <= 5% overhead with profiling off
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_profile.json"

QUERY = "SELECT COUNT(DISTINCT c) AS n FROM t WHERE c < {limit}"


def build_database(rows: int) -> Database:
    rng = np.random.default_rng(31)
    values = rng.permutation(rows).astype(np.int64)
    duplicates = max(1, rows // 1000)
    positions = rng.choice(rows, duplicates, replace=False)
    values[positions] = values[rng.integers(0, rows, duplicates)]
    database = Database(parallelism=1)  # serial: measure pure overhead
    table = database.create_table(
        "t", Schema([Field("c", DataType.INT64)]), partition_count=4
    )
    table.load_columns({"c": ColumnVector(DataType.INT64, values)})
    database.create_patch_index("pi", "t", "c", kind="unique")
    return database


def main() -> int:
    query = QUERY.format(limit=ROWS // 2)
    database = build_database(ROWS)
    print(f"rows={ROWS}  repeats={REPEATS}\n{query}")

    def baseline():
        statement = parse_statement(query)
        logical = Optimizer(database.catalog).optimize(
            Binder(database.catalog).bind_select(statement)
        )
        return collect(PhysicalPlanner(parallelism=1).plan(logical))

    def disabled():
        return database.sql(query)

    def enabled():
        return database.sql(query, profile=True)

    expected = baseline().scalar()
    assert disabled().scalar() == expected
    assert enabled().scalar() == expected

    baseline_run = measure(baseline, repeats=REPEATS, warmup=2)
    disabled_run = measure(disabled, repeats=REPEATS, warmup=2)
    enabled_run = measure(enabled, repeats=REPEATS, warmup=2)

    disabled_overhead = disabled_run.seconds / baseline_run.seconds - 1.0
    enabled_overhead = enabled_run.seconds / baseline_run.seconds - 1.0
    within_budget = disabled_overhead <= DISABLED_BUDGET

    print(
        f"baseline          {baseline_run.milliseconds:9.2f} ms\n"
        f"profiling off     {disabled_run.milliseconds:9.2f} ms "
        f"({disabled_overhead:+.1%})\n"
        f"profiling on      {enabled_run.milliseconds:9.2f} ms "
        f"({enabled_overhead:+.1%})\n"
        f"disabled budget   {DISABLED_BUDGET:.0%} -> "
        f"{'OK' if within_budget else 'EXCEEDED'}"
    )

    payload = {
        "rows": ROWS,
        "repeats": REPEATS,
        "query": query,
        "baseline_s": baseline_run.seconds,
        "disabled_s": disabled_run.seconds,
        "enabled_s": enabled_run.seconds,
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": enabled_overhead,
        "disabled_budget": DISABLED_BUDGET,
        "within_budget": within_budget,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    return 0 if within_budget else 1


if __name__ == "__main__":
    sys.exit(main())
