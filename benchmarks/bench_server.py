"""Server throughput under concurrent clients.

The headline acceptance of the serving layer: a durable database behind
:class:`~repro.serve.ReproServer` must scale snapshot-pinned reads with
client concurrency — queries per second at 4 and 16 clients should not
collapse below the single-client rate — because reads run on a thread
pool against pinned MVCC snapshots and never queue behind writers.

Two workloads are swept over a durable database:

- **reads** — each client loops a 1000-row range aggregate at 1, 4 and
  16 concurrent connections; q/s per concurrency level is recorded;
- **writes** — 8 clients insert single rows concurrently; statements/s
  plus the WAL's group-commit counters show how many fsyncs the writer
  batches absorbed.

Results land in ``BENCH_server.json``.

Run:  PYTHONPATH=src python benchmarks/bench_server.py

Knobs: ``REPRO_BENCH_SERVER_ROWS`` (default 200_000) and
``REPRO_BENCH_SERVER_SECONDS`` (per-workload duration, default 3.0).
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

from repro.serve import ServerClient, ServerThread
from repro.storage.column import ColumnVector
from repro.storage.database import Database
from repro.storage.schema import Field, Schema
from repro.types import DataType

ROWS = int(os.environ.get("REPRO_BENCH_SERVER_ROWS", 200_000))
SECONDS = float(os.environ.get("REPRO_BENCH_SERVER_SECONDS", 3.0))
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_server.json"

READ_CONCURRENCY = (1, 4, 16)
WRITE_CLIENTS = 8
RANGE_WIDTH = 1_000


def build(root: Path) -> Database:
    """A durable database with one checkpointed table of ROWS rows."""
    database = Database(path=root, parallelism=1, sync=False)
    table = database.create_table(
        "t",
        Schema([Field("k", DataType.INT64), Field("v", DataType.INT64)]),
        partition_count=4,
    )
    keys = np.arange(ROWS, dtype=np.int64)
    values = np.random.default_rng(11).integers(
        0, 1_000, size=ROWS, dtype=np.int64
    )
    table.load_columns(
        {
            "k": ColumnVector.from_numpy(DataType.INT64, keys),
            "v": ColumnVector.from_numpy(DataType.INT64, values),
        }
    )
    database.checkpoint()
    return database


def _read_loop(
    server: ServerThread,
    stop: threading.Event,
    counts: list[int],
    slot: int,
    failures: list[BaseException],
) -> None:
    try:
        with ServerClient(server.host, server.port) as client:
            done = 0
            while not stop.is_set():
                low = (slot * 7919 + done * 991) % max(1, ROWS - RANGE_WIDTH)
                client.sql(
                    f"SELECT COUNT(*) AS n, SUM(v) AS s FROM t "
                    f"WHERE k BETWEEN {low} AND {low + RANGE_WIDTH - 1}"
                )
                done += 1
            counts[slot] = done
    except BaseException as error:  # noqa: BLE001 - surfaced by main
        failures.append(error)


def _write_loop(
    server: ServerThread,
    stop: threading.Event,
    counts: list[int],
    slot: int,
    failures: list[BaseException],
) -> None:
    try:
        with ServerClient(server.host, server.port) as client:
            done = 0
            while not stop.is_set():
                key = ROWS + slot * 1_000_000 + done
                client.sql(f"INSERT INTO t VALUES ({key}, {slot})")
                done += 1
            counts[slot] = done
    except BaseException as error:  # noqa: BLE001 - surfaced by main
        failures.append(error)


def run_clients(server: ServerThread, clients: int, target) -> dict:
    """Drive *clients* concurrent loops for SECONDS; return q/s."""
    stop = threading.Event()
    counts = [0] * clients
    failures: list[BaseException] = []
    threads = [
        threading.Thread(target=target, args=(server, stop, counts, slot, failures))
        for slot in range(clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    time.sleep(SECONDS)
    stop.set()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - started
    if failures:
        raise failures[0]
    total = sum(counts)
    return {
        "clients": clients,
        "queries": total,
        "elapsed_s": elapsed,
        "qps": total / elapsed if elapsed else 0.0,
    }


def main() -> int:
    root = Path(tempfile.mkdtemp(prefix="repro-bench-server-"))
    try:
        database = build(root)
        reads: dict[str, dict] = {}
        with ServerThread(database, read_threads=16) as server:
            for clients in READ_CONCURRENCY:
                reads[str(clients)] = run_clients(server, clients, _read_loop)
                record = reads[str(clients)]
                print(
                    f"reads  {clients:>2} clients  "
                    f"{record['qps']:9.1f} q/s  "
                    f"({record['queries']} queries / "
                    f"{record['elapsed_s']:.2f}s)"
                )
            writes = run_clients(server, WRITE_CLIENTS, _write_loop)
        obs = database.obs
        batches = obs.counter("wal.group_commit.batches").value
        records = obs.counter("wal.group_commit.records").value
        print(
            f"writes {WRITE_CLIENTS:>2} clients  "
            f"{writes['qps']:9.1f} stmt/s  "
            f"group commit {records} records in {batches} fsync batches"
        )
        snapshot_builds = obs.counter("storage.snapshot.builds").value
        snapshot_reuses = obs.counter("storage.snapshot.reuses").value
        database.close()

        single = reads["1"]["qps"]
        scaled = all(
            reads[str(clients)]["qps"] >= single * 0.8
            for clients in READ_CONCURRENCY[1:]
        )
        headline_ok = scaled and single > 0
        print(
            f"read q/s at 4 and 16 clients "
            f"{'held' if scaled else 'collapsed'} vs 1 client -> "
            f"{'PASS' if headline_ok else 'FAIL'}"
        )

        payload = {
            "rows": ROWS,
            "seconds_per_workload": SECONDS,
            "range_width": RANGE_WIDTH,
            "reads": reads,
            "writes": {
                **writes,
                "group_commit_batches": batches,
                "group_commit_records": records,
                "statements_per_fsync": (
                    records / batches if batches else 0.0
                ),
            },
            "snapshots": {
                "builds": snapshot_builds,
                "reuses": snapshot_reuses,
            },
            "read_scaling_held": scaled,
            "headline_ok": headline_ok,
        }
        OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {OUTPUT}")
        return 0 if headline_ok else 1
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
