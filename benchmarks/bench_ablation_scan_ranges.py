"""Ablation: scan-range pruning and its composition with PatchSelect.

Paper §VI-A3 argues that merging scan ranges with patches is correct
and keeps the benefit of block pruning.  This ablation measures a
selective filtered query on an indexed column three ways:

- full scan + filter (no block pruning),
- block-pruned scan + filter,
- block-pruned PatchedScan (ranges *and* patches applied),

verifying that the range-pruned patched plan is the fastest and that
all three agree.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import measure
from repro.bench.reporting import format_table
from repro.core.patch_index import PatchIndex, PatchIndexMode
from repro.exec.expressions import ColumnRef, Comparison, Literal
from repro.exec.operators import Filter, PatchSelect, PatchSelectMode, TableScan
from repro.exec.result import collect
from repro.gen.synthetic import synthetic_table

from conftest import BENCH_ROWS

#: The predicate keeps the top ~5 % of the nearly sorted column.
_CUTOFF_FRACTION = 0.95


@pytest.fixture(scope="module")
def setup():
    # A low exception rate keeps blocks prunable: scattered exceptions
    # widen every block's min/max range, so at high rates block pruning
    # cannot help a top-range predicate (an interaction worth measuring,
    # but the composition ablation wants effective pruning).
    table = synthetic_table(
        "ranges",
        BENCH_ROWS,
        sorted_exception_rate=0.001,
        partition_count=4,
        seed=41,
    )
    index = PatchIndex.create(
        "pi", table, "s", "sorted", mode=PatchIndexMode.IDENTIFIER
    )
    index.detach()
    cutoff = int(BENCH_ROWS * _CUTOFF_FRACTION)
    predicate = Comparison(">=", ColumnRef("s"), Literal(cutoff))
    return table, index, predicate, cutoff


def _pruned_ranges(table, cutoff):
    ranges = []
    for partition in table.partitions:
        for start, stop in partition.scan_ranges_for_predicate(
            "s", ">=", cutoff
        ):
            ranges.append(
                (partition.base_rowid + start, partition.base_rowid + stop)
            )
    return ranges


def test_scan_range_ablation(benchmark, setup, report):
    table, index, predicate, cutoff = setup
    ranges = _pruned_ranges(table, cutoff)

    def full_scan():
        return collect(Filter(TableScan(table, columns=["s"]), predicate))

    def pruned_scan():
        return collect(
            Filter(TableScan(table, columns=["s"], scan_ranges=ranges), predicate)
        )

    def pruned_patched_scan():
        return collect(
            Filter(
                PatchSelect(
                    TableScan(table, columns=["s"], scan_ranges=ranges),
                    index,
                    PatchSelectMode.EXCLUDE_PATCHES,
                ),
                predicate,
            )
        )

    full = measure(full_scan)
    pruned = measure(pruned_scan)
    patched = measure(pruned_patched_scan)
    covered = sum(stop - start for start, stop in ranges)
    report(
        format_table(
            "Ablation §VI-A3: scan ranges × PatchSelect "
            f"({BENCH_ROWS} rows, predicate keeps top 5%, pruned scan "
            f"covers {covered} rows)",
            ["plan", "runtime [ms]", "rows out"],
            [
                ["full scan + filter", full.milliseconds, full.result.row_count],
                ["pruned scan + filter", pruned.milliseconds, pruned.result.row_count],
                [
                    "pruned PatchedScan(exclude) + filter",
                    patched.milliseconds,
                    patched.result.row_count,
                ],
            ],
        )
    )
    # Pruning must beat the full scan clearly.
    assert pruned.seconds < full.seconds
    # Excluding patches on top of ranges stays correct: output is the
    # filtered rows minus the (few) patches inside the range.
    assert patched.result.row_count <= pruned.result.row_count
    assert pruned.result.row_count - patched.result.row_count <= index.patch_count
    benchmark(pruned_patched_scan)


def test_block_pruning_effectiveness(benchmark, setup):
    table, __, __, cutoff = setup
    ranges = _pruned_ranges(table, cutoff)
    covered = sum(stop - start for start, stop in ranges)
    # The nearly sorted column prunes most blocks for a top-range query.
    assert covered < 0.5 * BENCH_ROWS
    benchmark(lambda: _pruned_ranges(table, cutoff))
