"""Ablation: incremental delta maintenance vs rebuild-every-batch.

The paper (§V) maintains PatchIndexes incrementally so table mutations
never force the O(n log n) from-scratch discovery; this bench puts a
number on that choice.  Two arms run the same mutation stream — batches
of mostly-unique appends plus a few updates and deletes — over a
durable database carrying a NUC PatchIndex:

- ``incremental``: the delta layer classifies every mutation into
  :class:`~repro.core.delta.PatchDelta` ops; a full rebuild happens
  only when drift crosses ``rebuild_threshold``
  (``run_pending_rebuilds`` after each batch, as the server does);
- ``rebuild_every_batch``: the self-management strawman — call
  ``index.rebuild()`` after every batch, as an engine without
  incremental maintenance must.

Both arms must answer the probe query identically; the headline is the
full-rebuild ratio (paper's motivation: ≥ 5× fewer rebuilds).

The second half measures what the checkpointed patch sets buy recovery:
the same directory is reopened twice — once as-is (patch sets restored,
WAL deltas replayed, ``recovery.indexes_restored``) and once with the
``patches.json`` sidecar deleted (forced rebuild-from-data fallback,
``recovery.indexes_rebuilt``).

Run:  PYTHONPATH=src python benchmarks/bench_incremental_maintenance.py

Knobs: ``REPRO_BENCH_MAINT_ROWS`` (base rows, default 100000),
``REPRO_BENCH_MAINT_BATCHES`` (mutation batches, default 20).
"""

from __future__ import annotations

import json
import os
import random
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.gen import unique_with_exceptions
from repro.storage.database import Database
from repro.storage.schema import Field, Schema
from repro.types import DataType

BASE_ROWS = int(os.environ.get("REPRO_BENCH_MAINT_ROWS", "100000"))
BATCHES = int(os.environ.get("REPRO_BENCH_MAINT_BATCHES", "20"))
BATCH_ROWS = max(50, BASE_ROWS // 40)
DUPLICATES_PER_BATCH = max(1, BATCH_ROWS // 100)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_maintenance.json"
QUERY = "SELECT COUNT(DISTINCT c) AS n FROM t"


def build(root: Path) -> Database:
    database = Database(path=root, parallelism=1)
    table = database.create_table(
        "t", Schema([Field("c", DataType.INT64)]), partition_count=2
    )
    table.load_columns(
        {"c": unique_with_exceptions(BASE_ROWS, 0.001, seed=20)}
    )
    database.create_patch_index("pi", "t", "c", kind="unique")
    database.checkpoint()
    return database


def mutate(database: Database, batch: int, rng: random.Random) -> None:
    """One batch: mostly-unique appends, a few duplicates, a few
    updates/deletes — the drift profile of a live fact table."""
    table = database.table("t")
    base = BASE_ROWS + batch * BATCH_ROWS
    rows = [[base + i] for i in range(BATCH_ROWS - DUPLICATES_PER_BATCH)]
    rows.extend(
        [[rng.randrange(0, BASE_ROWS)]] * DUPLICATES_PER_BATCH
    )
    table.insert_rows(rows)
    for _ in range(2):
        table.update_rowid(
            rng.randrange(0, table.row_count), "c", rng.randrange(0, BASE_ROWS)
        )
    database.sql(f"DELETE FROM t WHERE c = {rng.randrange(0, BASE_ROWS)}")


def run_arm(root: Path, rebuild_every_batch: bool) -> dict:
    database = build(root)
    index = database.catalog.index("pi")
    rebuilds_before = index.rebuild_count
    rng = random.Random(42)
    started = time.perf_counter()
    for batch in range(BATCHES):
        mutate(database, batch, rng)
        if rebuild_every_batch:
            index.rebuild()
        else:
            database.run_pending_rebuilds()
    elapsed = time.perf_counter() - started
    result = {
        "rebuilds": index.rebuild_count - rebuilds_before,
        "seconds": elapsed,
        "distinct": database.sql(QUERY).scalar(),
        "patch_count": index.patch_count,
        "drift_rate": index.drift_rate(),
    }
    database.close()
    return result


def measure_recovery(root: Path) -> dict:
    started = time.perf_counter()
    database = Database(path=root, parallelism=1)
    seconds = time.perf_counter() - started
    gauges = database.metrics().export()["gauges"]
    out = {
        "seconds": seconds,
        "indexes_restored": gauges.get("recovery.indexes_restored", 0),
        "indexes_rebuilt": gauges.get("recovery.indexes_rebuilt", 0),
        "delta_records_replayed": gauges.get(
            "recovery.delta_records_replayed", 0
        ),
        "distinct": database.sql(QUERY).scalar(),
    }
    database.close()
    return out


def main() -> int:
    workdir = Path(tempfile.mkdtemp(prefix="repro-bench-maint-"))
    try:
        incremental = run_arm(workdir / "incremental", False)
        strawman = run_arm(workdir / "strawman", True)

        # Recovery: reopen the incremental directory as-is (restore
        # path), then again with the patch-set sidecars deleted
        # (forced rebuild-from-data fallback).
        with_patches = measure_recovery(workdir / "incremental")
        stripped = workdir / "stripped"
        shutil.copytree(workdir / "incremental", stripped)
        for sidecar in stripped.glob("segments/*/patches.json"):
            sidecar.unlink()
        without_patches = measure_recovery(stripped)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    ratio = strawman["rebuilds"] / max(1, incremental["rebuilds"])
    equal = (
        incremental["distinct"] == strawman["distinct"]
        and with_patches["distinct"] == incremental["distinct"]
        and without_patches["distinct"] == incremental["distinct"]
    )
    rebuild_skipped = (
        with_patches["indexes_restored"] == 1
        and with_patches["indexes_rebuilt"] == 0
        and without_patches["indexes_rebuilt"] == 1
    )
    payload = {
        "base_rows": BASE_ROWS,
        "batches": BATCHES,
        "batch_rows": BATCH_ROWS,
        "query": QUERY,
        "arms": {
            "incremental": incremental,
            "rebuild_every_batch": strawman,
        },
        "rebuild_ratio": ratio,
        "equal_query_results": equal,
        "recovery": {
            "with_patch_sets": with_patches,
            "without_patch_sets": without_patches,
            "rebuild_skipped": rebuild_skipped,
        },
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")

    print(
        f"incremental: {incremental['rebuilds']} rebuilds in "
        f"{incremental['seconds']:.2f}s (drift "
        f"{incremental['drift_rate']:.4f})"
    )
    print(
        f"strawman:    {strawman['rebuilds']} rebuilds in "
        f"{strawman['seconds']:.2f}s"
    )
    print(
        f"ratio {ratio:.1f}x fewer rebuilds; equal results: {equal}"
    )
    print(
        f"recovery with patch sets: restored="
        f"{with_patches['indexes_restored']} "
        f"replayed={with_patches['delta_records_replayed']} "
        f"in {with_patches['seconds'] * 1e3:.1f} ms; without: rebuilt="
        f"{without_patches['indexes_rebuilt']} in "
        f"{without_patches['seconds'] * 1e3:.1f} ms"
    )
    print(f"wrote {OUTPUT}")
    ok = equal and rebuild_skipped and ratio >= 5.0
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
