"""Checkpoint and crash-recovery cost vs row count.

Measures the durable engine's two end-of-life paths over a nearly
unique column carrying a NUC PatchIndex:

- ``checkpoint``: flush every partition to columnar segment files,
  write the manifest, log the WAL marker and compact the log;
- ``recover``: reopen the directory cold — load segments (block
  sketches included), replay the WAL tail and rebuild the PatchIndex
  from data (paper §V: patches are never logged).

A reopen after a clean checkpoint is segment-bound; a reopen of a
directory whose tail still holds row appends is replay-bound.  Both
are measured, results are sanity-checked (identical COUNT DISTINCT
before and after), and the sweep lands in ``BENCH_recovery.json``.

Run:  PYTHONPATH=src python benchmarks/bench_recovery.py

Knobs: ``REPRO_BENCH_RECOVERY_ROWS`` — comma-separated row counts
(default ``10000,100000,1000000``).
"""

from __future__ import annotations

import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.gen import unique_with_exceptions
from repro.storage.database import Database
from repro.storage.schema import Field, Schema
from repro.types import DataType

ROW_COUNTS = [
    int(part)
    for part in os.environ.get(
        "REPRO_BENCH_RECOVERY_ROWS", "10000,100000,1000000"
    ).split(",")
]
EXCEPTION_RATE = 0.001
TAIL_FRACTION = 0.05  # rows appended after the checkpoint (WAL tail)
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_recovery.json"
QUERY = "SELECT COUNT(DISTINCT c) AS n FROM t"


def build(root: Path, rows: int) -> tuple[float, dict, list]:
    """Create, checkpoint, append a tail; return timings + truth."""
    database = Database(path=root, parallelism=1)
    table = database.create_table(
        "t", Schema([Field("c", DataType.INT64)]), partition_count=4
    )
    table.load_columns(
        {"c": unique_with_exceptions(rows, EXCEPTION_RATE, seed=20)}
    )
    database.create_patch_index("pi", "t", "c", kind="unique")
    started = time.perf_counter()
    info = database.checkpoint()
    checkpoint_s = time.perf_counter() - started
    tail = max(1, int(rows * TAIL_FRACTION))
    table.insert_rows([[rows + i] for i in range(tail)])
    truth = database.sql(QUERY).rows()
    database.close()
    return checkpoint_s, info, truth


def reopen(root: Path) -> tuple[float, "Database"]:
    started = time.perf_counter()
    database = Database(path=root, parallelism=1)
    return time.perf_counter() - started, database


def main() -> int:
    series = []
    failures = 0
    for rows in ROW_COUNTS:
        root = Path(tempfile.mkdtemp(prefix="repro-bench-recovery-"))
        try:
            checkpoint_s, info, truth = build(root, rows)
            segment_bytes = info["segment_bytes"]
            detail = info["table_details"]["t"]
            recover_s, database = reopen(root)
            recovered = database.sql(QUERY).rows()
            index = database.catalog.index("pi")
            ok = recovered == truth and index.provenance == "recovery"
            failures += 0 if ok else 1
            metrics = database.metrics().export()
            replayed = metrics["gauges"].get("recovery.replayed_records", 0)
            database.close()
            series.append(
                {
                    "rows": rows,
                    "checkpoint_s": checkpoint_s,
                    "segment_bytes": segment_bytes,
                    "encoded_ratio": detail["encoded_ratio"],
                    "columns": detail["columns"],
                    "recover_s": recover_s,
                    "wal_records_replayed": replayed,
                    "identical_results": ok,
                }
            )
            encodings = "+".join(
                sorted(detail["columns"]["c"]["encodings"])
            )
            print(
                f"rows={rows:>9}  checkpoint {checkpoint_s * 1e3:8.1f} ms  "
                f"({segment_bytes / 1e6:7.2f} MB, "
                f"ratio {detail['encoded_ratio']:.3f}, {encodings})  "
                f"recover {recover_s * 1e3:8.1f} ms  "
                f"replayed={replayed}  {'ok' if ok else 'MISMATCH'}"
            )
        finally:
            shutil.rmtree(root, ignore_errors=True)

    payload = {
        "exception_rate": EXCEPTION_RATE,
        "tail_fraction": TAIL_FRACTION,
        "query": QUERY,
        "series": series,
        "identical_results": failures == 0,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
