"""Memory experiment (paper §VII-B3): PatchIndex memory vs exception rate.

Paper numbers at 100 M rows: the bitmap design is constant at 12.5 MB
(1 bit per tuple) while the identifier design costs 7.9 MB per 1 % of
exceptions (64-bit rowids); the designs cross at ≈1.6 % exceptions.
These are *exact* properties of the data structures, so this benchmark
reproduces the numbers at its own scale and asserts the crossover.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.core.patch_index import PatchIndex, PatchIndexMode
from repro.core.patches import CROSSOVER_RATE
from repro.gen.synthetic import synthetic_table

from conftest import CREATE_ROWS, SWEEP_RATES


def _index_for(rate: float, mode: PatchIndexMode) -> PatchIndex:
    table = synthetic_table(
        f"mem_{rate}",
        CREATE_ROWS,
        unique_exception_rate=rate,
        partition_count=4,
        seed=int(rate * 1000) + 31,
    )
    index = PatchIndex.create("pi", table, "u", "unique", mode=mode)
    index.detach()
    return index


def test_memory_vs_rate(benchmark, report):
    rows = []
    rates = [0.005, CROSSOVER_RATE] + [r for r in SWEEP_RATES if r >= 0.05]
    for rate in rates:
        ident = _index_for(rate, PatchIndexMode.IDENTIFIER)
        bitmap = _index_for(rate, PatchIndexMode.BITMAP)
        assert ident.patch_count == bitmap.patch_count
        rows.append(
            [
                f"{rate:.4f}",
                ident.patch_count,
                ident.memory_usage_bytes(),
                bitmap.memory_usage_bytes(),
                "identifier"
                if ident.memory_usage_bytes() < bitmap.memory_usage_bytes()
                else "bitmap",
            ]
        )
    report(
        format_table(
            f"§VII-B3 memory: identifier vs bitmap ({CREATE_ROWS} rows; "
            "paper: bitmap constant 12.5MB@100M, identifier 7.9MB/1%, "
            "crossover 1.6%)",
            ["rate", "patches", "identifier [B]", "bitmap [B]", "cheaper"],
            rows,
        )
    )
    # Bitmap memory is constant: every row's bitmap bytes are equal.
    bitmap_sizes = {row[3] for row in rows}
    assert len(bitmap_sizes) == 1
    # Identifier memory is 8 bytes per patch.
    for row in rows:
        assert row[2] == 8 * row[1]
    # Below the 1/64 crossover the identifier design is cheaper, above
    # it the bitmap wins.
    assert rows[0][4] == "identifier"
    assert rows[-1][4] == "bitmap"
    # Give pytest-benchmark something to record.
    benchmark(lambda: _index_for(0.05, PatchIndexMode.BITMAP).memory_usage_bytes())


def test_auto_mode_picks_cheaper_design(benchmark):
    low = _index_for(0.005, PatchIndexMode.AUTO)
    high = _index_for(0.1, PatchIndexMode.AUTO)
    assert low.design == "identifier"
    assert high.design == "bitmap"
    benchmark(lambda: low.memory_usage_bytes())
