"""Ablation: patch-aware compression ratios (paper §VIII outlook).

The paper hypothesizes that treating the discovered patches separately
increases compression ratios — the PFOR idea applied to the
PatchIndex's knowledge.  This sweep compresses the nearly sorted
synthetic column three ways across exception rates:

- raw (8 bytes per value),
- plain delta/FOR with zig-zag (one width must cover the exception
  jumps),
- patch-aware delta/FOR (exceptions stored verbatim on the side).
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.core.compression import compress_for, compress_sorted
from repro.gen.synthetic import sorted_with_exceptions

from conftest import CREATE_ROWS, SWEEP_RATES


def test_compression_ratio_sweep(benchmark, report):
    rows = []
    raw = CREATE_ROWS * 8
    for rate in SWEEP_RATES:
        column = sorted_with_exceptions(CREATE_ROWS, rate, seed=61)
        plain = compress_for(column)
        patched = compress_sorted(column)
        assert patched.decompress().to_pylist() == column.to_pylist()
        rows.append(
            [
                rate,
                raw / plain.size_bytes(),
                raw / patched.size_bytes(),
                len(patched.exception_rowids),
            ]
        )
    report(
        format_table(
            f"Ablation §VIII: compression ratio over raw 8B/value "
            f"({CREATE_ROWS} rows)",
            ["rate", "plain FOR [x]", "patch-aware [x]", "patches"],
            rows,
        )
    )
    # Patch separation must win clearly at low rates (2x+ below 1 %)
    # and still beat plain FOR up to 5 %.
    for row in rows:
        if row[0] <= 0.01:
            assert row[2] > 2 * row[1], rows
        elif row[0] <= 0.05:
            assert row[2] > row[1], rows
    column = sorted_with_exceptions(CREATE_ROWS, 0.01, seed=61)
    benchmark(lambda: compress_sorted(column).size_bytes())


def test_compression_speed(benchmark):
    column = sorted_with_exceptions(CREATE_ROWS, 0.01, seed=62)
    benchmark(lambda: compress_sorted(column))
