"""Experiment T1-join (paper §VII-A1).

The paper: joining ``catalog_sales`` (NSC on ``sold_date``, 0.5 %
exceptions) with ``date_dim`` drops from 1.4 s to 0.7 s — roughly 2×
— when the HashJoin is replaced by a MergeJoin over the sorted
subsequence plus a HashJoin over the patches.

Here the same join runs at a scaled row count, with and without the
PatchIndex; the shape to reproduce is "with PatchIndex ≈ 2× faster"
(who wins matters, the exact factor depends on the substrate).
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.bench.harness import measure
from repro.bench.reporting import format_table
from repro.gen.tpcds import load_tpcds
from repro.plan.optimizer import OptimizerOptions

from conftest import SALES_ROWS

# The paper's metric is "the total runtime for scanning both relations
# and joining them"; COUNT(*) drains the join with negligible extra work.
JOIN_QUERY = (
    "SELECT COUNT(*) AS n "
    "FROM catalog_sales cs JOIN date_dim d ON cs.cs_sold_date_sk = d.d_date_sk"
)


@pytest.fixture(scope="module")
def tpcds_db() -> Database:
    db = Database()
    load_tpcds(
        db,
        catalog_sales_rows=SALES_ROWS,
        customer_rows=1000,
        partition_count=4,
        sold_date_exception_rate=0.005,
    )
    db.sql(
        "CREATE PATCHINDEX pi_sold ON catalog_sales(cs_sold_date_sk) TYPE SORTED"
    )
    return db


def _run(db: Database, use_patches: bool):
    options = OptimizerOptions(
        use_patch_indexes=use_patches, always_rewrite=use_patches
    )
    return db.sql(JOIN_QUERY, optimizer_options=options)


def test_join_without_patchindex(benchmark, tpcds_db):
    result = benchmark(lambda: _run(tpcds_db, use_patches=False))
    assert result.row_count == 1


def test_join_with_patchindex(benchmark, tpcds_db, report):
    result = benchmark(lambda: _run(tpcds_db, use_patches=True))
    assert result.row_count == 1

    baseline = measure(lambda: _run(tpcds_db, use_patches=False))
    patched = measure(lambda: _run(tpcds_db, use_patches=True))
    index = tpcds_db.catalog.index("pi_sold")
    report(
        format_table(
            "§VII-A1 NSC join: catalog_sales ⋈ date_dim "
            f"({SALES_ROWS} rows, {index.exception_rate:.2%} exceptions; "
            "paper: 1.4s → 0.7s at SF1000)",
            ["plan", "runtime [ms]", "speedup"],
            [
                ["HashJoin (w/o PatchIndex)", baseline.milliseconds, 1.0],
                [
                    "MergeJoin + patch HashJoin (w/ PatchIndex)",
                    patched.milliseconds,
                    baseline.seconds / patched.seconds,
                ],
            ],
        )
    )
    # Correctness: both plans agree.
    assert _run(tpcds_db, True).to_pylist() == _run(tpcds_db, False).to_pylist()
