"""Serial vs morsel-parallel speedup on a distinct-over-NUC query.

Measures the acceptance scenario of the parallel executor: a
``COUNT(DISTINCT c)`` over a nearly-unique 10M-row column carrying a
NUC PatchIndex, so the plan composes the paper's distinct rewrite
(§VI-B1: exclude-patches branch + distinct over the patches) with the
morsel-driven Exchange.  Results are asserted byte-identical between
the serial and parallel plans — including the use_patches /
exclude_patches branches and a scan-range-pruned variant — and the
speedup is recorded to ``BENCH_parallel.json``.

Run:  PYTHONPATH=src python benchmarks/bench_parallel_scan.py

Knobs: ``REPRO_BENCH_PARALLEL_ROWS`` (default 10_000_000),
``REPRO_THREADS`` (parallel worker count, default: CPU count).
Meaningful speedup needs a multi-core machine; on one core the cost
model (correctly) refuses to parallelize, which the script reports.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import numpy as np

from repro.bench.harness import measure
from repro.exec.parallel import default_parallelism, shutdown_pool
from repro.storage.column import ColumnVector
from repro.storage.database import Database
from repro.storage.schema import Field, Schema
from repro.types import DataType

ROWS = int(os.environ.get("REPRO_BENCH_PARALLEL_ROWS", 10_000_000))
EXCEPTION_RATE = 0.001  # nearly unique: NUC with 0.1 % patches
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

QUERIES = [
    # The headline query the speedup is measured on.
    "SELECT COUNT(DISTINCT c) AS n FROM t",
    # Equivalence-only variants: full DISTINCT output (exercises the
    # ordered gather), and a block-pruned range restriction.
    "SELECT DISTINCT c FROM t",
    f"SELECT DISTINCT c FROM t WHERE c < {ROWS // 4}",
    "SELECT MIN(c) AS lo, MAX(c) AS hi, COUNT(*) AS n FROM t",
]


def build_database(rows: int) -> Database:
    rng = np.random.default_rng(20)
    values = rng.permutation(rows).astype(np.int64)
    duplicates = max(1, int(rows * EXCEPTION_RATE))
    # Overwrite a random sample with repeated values -> NUC patches.
    positions = rng.choice(rows, duplicates, replace=False)
    values[positions] = values[rng.integers(0, rows, duplicates)]
    database = Database()
    table = database.create_table(
        "t", Schema([Field("c", DataType.INT64)]), partition_count=8
    )
    table.load_columns({"c": ColumnVector(DataType.INT64, values)})
    database.create_patch_index("pi", "t", "c", kind="unique")
    return database


def results_identical(left, right) -> bool:
    """Byte-identical comparison without materializing Python rows."""
    if left.schema != right.schema or left.row_count != right.row_count:
        return False
    for field in left.schema:
        a = left.columns[field.name]
        b = right.columns[field.name]
        if not np.array_equal(a.values, b.values):
            return False
        a_validity = a.validity_or_all_true()
        b_validity = b.validity_or_all_true()
        if not np.array_equal(a_validity, b_validity):
            return False
    return True


def main() -> int:
    threads = default_parallelism()
    print(f"rows={ROWS}  threads={threads}  cpus={os.cpu_count()}")
    database = build_database(ROWS)

    failures = []
    for query in QUERIES:
        serial = database.sql(query, parallelism=1)
        parallel = database.sql(query, parallelism=max(2, threads))
        if not results_identical(serial, parallel):
            failures.append(query)
            print(f"MISMATCH: {query}")
        else:
            print(f"identical: {query}")

    headline = QUERIES[0]
    plan = database.explain(headline, parallelism=threads)
    parallel_planned = "dop=" in plan
    serial_run = measure(lambda: database.sql(headline, parallelism=1))
    parallel_run = measure(lambda: database.sql(headline, parallelism=threads))
    speedup = serial_run.seconds / parallel_run.seconds
    print(plan)
    print(
        f"serial   {serial_run.seconds * 1e3:9.1f} ms\n"
        f"parallel {parallel_run.seconds * 1e3:9.1f} ms  "
        f"({speedup:.2f}x, dop={threads})"
    )
    if not parallel_planned:
        print(
            "note: cost model kept the plan serial "
            "(single core or input below breakeven)"
        )

    payload = {
        "rows": ROWS,
        "threads": threads,
        "cpu_count": os.cpu_count(),
        "exception_rate": EXCEPTION_RATE,
        "query": headline,
        "serial_s": serial_run.seconds,
        "parallel_s": parallel_run.seconds,
        "speedup": speedup,
        "parallel_planned": parallel_planned,
        "identical_results": not failures,
        "queries_checked": len(QUERIES),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}")
    shutdown_pool()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
