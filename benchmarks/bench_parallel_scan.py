"""Serial vs thread vs process parallel speedup on a distinct-over-NUC query.

Measures the acceptance scenario of the parallel executor: a
``COUNT(DISTINCT c)`` over a nearly-unique 10M-row column carrying a
NUC PatchIndex, so the plan composes the paper's distinct rewrite
(§VI-B1: exclude-patches branch + distinct over the patches) with the
morsel-driven Exchange.  The table lives in a *durable, memory-mapped*
data directory so the process backend can attach it from worker
processes; results are asserted byte-identical across the serial plan
and both parallel backends — including the use_patches /
exclude_patches branches and a scan-range-pruned variant — and the
thread-vs-process ablation is recorded to ``BENCH_parallel.json``.

On a single-core machine a "speedup" is meaningless (every backend
degenerates to one worker), so the headline speedup is refused and the
payload carries ``"degenerate": true`` instead.

Run:  PYTHONPATH=src python benchmarks/bench_parallel_scan.py

Knobs: ``REPRO_BENCH_PARALLEL_ROWS`` (default 10_000_000),
``REPRO_THREADS`` (worker count, default: CPU count),
``REPRO_PARALLEL_START_METHOD`` (worker start method, default fork).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.bench.harness import measure
from repro.exec.parallel import (
    default_parallelism,
    shutdown_pool,
    shutdown_process_pool,
    start_method,
)
from repro.storage.column import ColumnVector
from repro.storage.database import Database
from repro.storage.schema import Field, Schema
from repro.types import DataType

ROWS = int(os.environ.get("REPRO_BENCH_PARALLEL_ROWS", 10_000_000))
EXCEPTION_RATE = 0.001  # nearly unique: NUC with 0.1 % patches
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"

QUERIES = [
    # The headline query the ablation is measured on.
    "SELECT COUNT(DISTINCT c) AS n FROM t",
    # Equivalence-only variants: full DISTINCT output (exercises the
    # ordered gather), and a block-pruned range restriction.
    "SELECT DISTINCT c FROM t",
    f"SELECT DISTINCT c FROM t WHERE c < {ROWS // 4}",
    "SELECT MIN(c) AS lo, MAX(c) AS hi, COUNT(*) AS n FROM t",
]


def build_database(rows: int, root: str) -> Database:
    rng = np.random.default_rng(20)
    values = rng.permutation(rows).astype(np.int64)
    duplicates = max(1, int(rows * EXCEPTION_RATE))
    # Overwrite a random sample with repeated values -> NUC patches.
    positions = rng.choice(rows, duplicates, replace=False)
    values[positions] = values[rng.integers(0, rows, duplicates)]
    database = Database(path=root, mmap=True, sync=False)
    table = database.create_table(
        "t", Schema([Field("c", DataType.INT64)]), partition_count=8
    )
    table.load_columns({"c": ColumnVector(DataType.INT64, values)})
    # Checkpoint before creating the index: worker processes attach the
    # checkpointed segments zero-copy instead of replaying the load.
    database.checkpoint()
    database.create_patch_index("pi", "t", "c", kind="unique")
    return database


def results_identical(left, right) -> bool:
    """Byte-identical comparison without materializing Python rows."""
    if left.schema != right.schema or left.row_count != right.row_count:
        return False
    for field in left.schema:
        a = left.columns[field.name]
        b = right.columns[field.name]
        if not np.array_equal(a.values, b.values):
            return False
        a_validity = a.validity_or_all_true()
        b_validity = b.validity_or_all_true()
        if not np.array_equal(a_validity, b_validity):
            return False
    return True


def main() -> int:
    cpus = os.cpu_count() or 1
    dop = max(2, default_parallelism())
    degenerate = cpus <= 1
    print(
        f"rows={ROWS}  dop={dop}  cpus={cpus}  "
        f"start_method={start_method()}"
    )
    with tempfile.TemporaryDirectory(prefix="bench_parallel_") as root:
        database = build_database(ROWS, root)

        failures = []
        for query in QUERIES:
            serial = database.sql(query, parallelism=1)
            threaded = database.sql(query, parallelism=dop, backend="thread")
            processed = database.sql(query, parallelism=dop, backend="process")
            if results_identical(serial, threaded) and results_identical(
                serial, processed
            ):
                print(f"identical: {query}")
            else:
                failures.append(query)
                print(f"MISMATCH: {query}")

        headline = QUERIES[0]
        plan = database.explain(headline, parallelism=dop, backend="process")
        parallel_planned = "dop=" in plan
        process_planned = "backend=process" in plan
        serial_run = measure(lambda: database.sql(headline, parallelism=1))
        thread_run = measure(
            lambda: database.sql(headline, parallelism=dop, backend="thread")
        )
        process_run = measure(
            lambda: database.sql(headline, parallelism=dop, backend="process")
        )
        speedup_thread = serial_run.seconds / thread_run.seconds
        speedup_process = serial_run.seconds / process_run.seconds
        print(plan)
        print(
            f"serial   {serial_run.seconds * 1e3:9.1f} ms\n"
            f"thread   {thread_run.seconds * 1e3:9.1f} ms  "
            f"({speedup_thread:.2f}x, dop={dop})\n"
            f"process  {process_run.seconds * 1e3:9.1f} ms  "
            f"({speedup_process:.2f}x, dop={dop})"
        )
        if degenerate:
            print(
                "note: single-core machine — headline speedup refused "
                "(degenerate)"
            )
        if not parallel_planned:
            print(
                "note: cost model kept the plan serial "
                "(input below breakeven)"
            )

        payload = {
            "rows": ROWS,
            "dop": dop,
            "cpu_count": cpus,
            "degenerate": degenerate,
            "start_method": start_method(),
            "exception_rate": EXCEPTION_RATE,
            "query": headline,
            "serial_s": serial_run.seconds,
            "thread_s": thread_run.seconds,
            "process_s": process_run.seconds,
            "speedup_thread": speedup_thread,
            "speedup_process": speedup_process,
            # The headline number: refused on degenerate machines.
            "speedup": None if degenerate else speedup_process,
            "parallel_planned": parallel_planned,
            "process_planned": process_planned,
            "identical_results": not failures,
            "queries_checked": len(QUERIES),
        }
        OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {OUTPUT}")
        database.close()
        shutdown_process_pool()
        shutdown_pool()
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
