"""Ablation: the raw overhead of the PatchSelect operator.

The paper (§VIII) notes that using PatchIndexes "comes along with
overhead in query execution, mainly caused by additional operators in
the query plan and by copying subtrees", motivating its cost-model
future work.  This ablation quantifies exactly that overhead on this
engine — the numbers behind the
:class:`repro.core.cost_model.CostModel` calibration:

- a bare scan vs a scan + exclude-PatchSelect with an *empty* patch set
  (pure operator overhead);
- the mask cost of the identifier vs the bitmap design at a low and a
  high exception rate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.harness import measure
from repro.bench.reporting import format_table
from repro.core.constraints import ConstraintKind
from repro.core.patch_index import PatchIndex
from repro.core.patches import PatchSet
from repro.exec.operators import PatchSelect, PatchSelectMode, TableScan
from repro.exec.result import collect
from repro.gen.synthetic import synthetic_table

from conftest import BENCH_ROWS


def _index_with_rate(table, rate: float, design: str) -> PatchIndex:
    rng = np.random.default_rng(17)
    patch_sets = []
    for partition in table.partitions:
        count = int(partition.row_count * rate)
        rowids = np.sort(
            rng.choice(partition.row_count, size=count, replace=False)
        ).astype(np.int64)
        patch_sets.append(PatchSet.build(rowids, partition.row_count, design))
    index = PatchIndex(
        "pi",
        table,
        "u",
        ConstraintKind.UNIQUE,
        patch_sets,
        threshold=1.0,
    )
    index.detach()
    return index


@pytest.fixture(scope="module")
def table():
    return synthetic_table("overhead", BENCH_ROWS, partition_count=4, seed=51)


def test_patch_select_overhead(benchmark, table, report):
    bare = measure(lambda: collect(TableScan(table, columns=["u"])))
    rows = [["bare scan", bare.milliseconds, 1.0]]
    for design in ("identifier", "bitmap"):
        for rate in (0.0, 0.01, 0.5):
            index = _index_with_rate(table, rate, design)
            run = measure(
                lambda idx=index: collect(
                    PatchSelect(
                        TableScan(table, columns=["u"]),
                        idx,
                        PatchSelectMode.EXCLUDE_PATCHES,
                    )
                )
            )
            rows.append(
                [
                    f"scan + exclude ({design}, rate={rate:g})",
                    run.milliseconds,
                    run.seconds / bare.seconds,
                ]
            )
    report(
        format_table(
            f"Ablation §VIII: PatchSelect overhead over a bare scan "
            f"({BENCH_ROWS} rows)",
            ["plan", "runtime [ms]", "vs bare scan"],
            rows,
        )
    )
    # The overhead must stay bounded — the cost model charges a small
    # constant per row, which only holds if this factor is modest.
    for row in rows[1:]:
        assert row[2] < 8.0, rows
    benchmark(lambda: collect(TableScan(table, columns=["u"])))


def test_designs_mask_cost_similarity(benchmark, table, report):
    """Figure 4/5 observed 'both designs perform similarly' — check the
    isolated mask computation agrees."""
    rows = []
    for rate in (0.001, 0.1, 0.5):
        timings = {}
        for design in ("identifier", "bitmap"):
            index = _index_with_rate(table, rate, design)
            run = measure(
                lambda idx=index: idx.mask_for_range(0, table.row_count)
            )
            timings[design] = run.milliseconds
        rows.append(
            [
                f"{rate:g}",
                timings["identifier"],
                timings["bitmap"],
            ]
        )
    report(
        format_table(
            "Ablation §V: full-table mask cost, identifier vs bitmap",
            ["rate", "identifier [ms]", "bitmap [ms]"],
            rows,
        )
    )
    index = _index_with_rate(table, 0.1, "bitmap")
    benchmark(lambda: index.mask_for_range(0, table.row_count))
