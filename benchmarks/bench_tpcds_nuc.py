"""Experiment Table I (paper §VII-A2).

Count-distinct over two `customer` columns with very different
exception rates:

    c_email_address     3.6 %  exceptions   paper: 0.37 s → 0.10 s
    c_current_addr_sk  86.5 %  exceptions   paper: 0.19 s → 0.15 s

Shape to reproduce: a large win at the low rate, a small-but-positive
win even at the very high rate.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.bench.harness import measure
from repro.bench.reporting import format_table
from repro.gen.tpcds import TpcdsGenerator
from repro.plan.optimizer import OptimizerOptions

from conftest import CUSTOMER_ROWS


@pytest.fixture(scope="module")
def customer_db() -> Database:
    db = Database()
    generator = TpcdsGenerator()
    table = db.create_table(
        "customer", generator.customer_schema(), partition_count=4
    )
    table.load_columns(generator.customer(CUSTOMER_ROWS))
    db.sql(
        "CREATE PATCHINDEX pi_email ON customer(c_email_address) TYPE UNIQUE"
    )
    db.sql(
        "CREATE PATCHINDEX pi_addr ON customer(c_current_addr_sk) TYPE UNIQUE"
    )
    return db


def _count_distinct(db: Database, column: str, use_patches: bool):
    options = OptimizerOptions(
        use_patch_indexes=use_patches, always_rewrite=use_patches
    )
    return db.sql(
        f"SELECT COUNT(DISTINCT {column}) AS n FROM customer",
        optimizer_options=options,
    )


@pytest.mark.parametrize("column", ["c_email_address", "c_current_addr_sk"])
def test_count_distinct_without_patchindex(benchmark, customer_db, column):
    result = benchmark(lambda: _count_distinct(customer_db, column, False))
    assert result.scalar() > 0


@pytest.mark.parametrize("column", ["c_email_address", "c_current_addr_sk"])
def test_count_distinct_with_patchindex(benchmark, customer_db, column):
    result = benchmark(lambda: _count_distinct(customer_db, column, True))
    assert result.scalar() > 0


def test_table1_summary(benchmark, customer_db, report):
    rows = []
    for column, index_name in [
        ("c_email_address", "pi_email"),
        ("c_current_addr_sk", "pi_addr"),
    ]:
        index = customer_db.catalog.index(index_name)
        baseline = measure(lambda: _count_distinct(customer_db, column, False))
        patched = measure(lambda: _count_distinct(customer_db, column, True))
        # Correctness first.
        assert (
            _count_distinct(customer_db, column, True).scalar()
            == _count_distinct(customer_db, column, False).scalar()
        )
        rows.append(
            [
                column,
                f"{index.exception_rate:.1%}",
                baseline.milliseconds,
                patched.milliseconds,
                baseline.seconds / patched.seconds,
            ]
        )
    report(
        format_table(
            f"Table I: count distinct on customer ({CUSTOMER_ROWS} rows; "
            "paper: 0.37s→0.10s @3.6%, 0.19s→0.15s @86.5%)",
            ["column", "exceptions", "w/o PI [ms]", "w/ PI [ms]", "speedup"],
            rows,
        )
    )
    benchmark(lambda: _count_distinct(customer_db, "c_email_address", True))
