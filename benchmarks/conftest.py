"""Shared benchmark fixtures and paper-style report collection.

Scale knobs (environment variables):

``REPRO_BENCH_ROWS``        rows for the Figure 4/5 sweeps  (default 200000)
``REPRO_BENCH_CREATE_ROWS`` rows for the Figure 6 creation sweep (100000)
``REPRO_BENCH_SALES_ROWS``  catalog_sales rows for the join bench (400000)
``REPRO_BENCH_CUSTOMER_ROWS`` customer rows for Table I (200000)

Every benchmark prints the series/rows the corresponding paper table or
figure reports; the lines are gathered by the ``report`` fixture and
emitted in the terminal summary so they survive pytest's capture and
land in ``bench_output.txt``.
"""

from __future__ import annotations

import os

import pytest

_REPORTS: list[str] = []


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


BENCH_ROWS = _env_int("REPRO_BENCH_ROWS", 200_000)
CREATE_ROWS = _env_int("REPRO_BENCH_CREATE_ROWS", 100_000)
SALES_ROWS = _env_int("REPRO_BENCH_SALES_ROWS", 400_000)
CUSTOMER_ROWS = _env_int("REPRO_BENCH_CUSTOMER_ROWS", 200_000)

#: Exception-rate grid for the Figure 4/5/6 sweeps (paper: 0..~90 %).
SWEEP_RATES = [0.001, 0.01, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8]


@pytest.fixture(scope="session")
def report():
    """Collect paper-style result tables for the terminal summary."""

    def add(text: str) -> None:
        _REPORTS.append(text)

    return add


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.write_sep("=", "paper reproduction tables")
    for text in _REPORTS:
        terminalreporter.write_line(text)
        terminalreporter.write_line("")
