"""Figure 5 (paper §VII-B1): sort-query runtime vs exception rate.

Paper setup: the synthetic table again, a full ORDER BY on the nearly
sorted column, with and without a PatchIndex (both designs).

Shape to reproduce:
- no-PI runtime *increases* with the rate (the sort kernel — timsort
  here, the engine's QuickSort pivoting in the paper — degrades with
  disorder);
- PI runtime grows with the rate (more patches to sort + merge), so the
  gain shrinks with increasing rates;
- both designs behave similarly.

Substrate deviation (documented in EXPERIMENTS.md): in the paper the
gain never goes negative; on this NumPy substrate the baseline sort is
so cheap per row that the patched pipeline's copy overhead exceeds the
savings above ≈15 % exceptions.  The PatchIndex wins in the realistic
low-rate regime, and the engine's cost model — the paper's own §VIII
future work — gates the rewrite beyond the breakeven (the sweep below
bypasses the gate to expose the raw curves, as the paper's figure does).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import measure
from repro.bench.reporting import format_series
from repro.core.patch_index import PatchIndex, PatchIndexMode
from repro.exec.operators.sort import SortKey
from repro.exec.result import collect
from repro.plan import logical as lp
from repro.plan.optimizer import Optimizer, OptimizerOptions
from repro.plan.physical import PhysicalPlanner
from repro.storage.catalog import Catalog
from repro.gen.synthetic import synthetic_table

from conftest import BENCH_ROWS, SWEEP_RATES


def _make_table(rate: float):
    return synthetic_table(
        f"fig5_{rate}",
        BENCH_ROWS,
        sorted_exception_rate=rate,
        partition_count=4,
        seed=int(rate * 1000) + 7,
    )


def _sort_plan(table, index: PatchIndex | None):
    catalog = Catalog()
    catalog.add_table(table)
    if index is not None:
        catalog.add_index(index)
    plan = lp.LogicalSort(lp.LogicalScan(table, ("s",)), (SortKey("s"),))
    options = OptimizerOptions(
        use_patch_indexes=index is not None, always_rewrite=index is not None
    )
    optimized = Optimizer(catalog, options).optimize(plan)
    return PhysicalPlanner().plan(optimized)


def _run_point(rate: float) -> dict[str, float]:
    table = _make_table(rate)
    ident = PatchIndex.create(
        "pi_i", table, "s", "sorted", mode=PatchIndexMode.IDENTIFIER
    )
    bitmap = PatchIndex.create(
        "pi_b", table, "s", "sorted", mode=PatchIndexMode.BITMAP
    )
    ident.detach()
    bitmap.detach()
    plans = {
        "no PI": _sort_plan(table, None),
        "PI identifier": _sort_plan(table, ident),
        "PI bitmap": _sort_plan(table, bitmap),
    }
    timings = {}
    reference = None
    for label, operator in plans.items():
        run = measure(lambda op=operator: collect(op))
        timings[label] = run.milliseconds
        values = run.result.column("s").to_pylist()
        if reference is None:
            reference = values
        else:
            assert values == reference, f"{label} produced a different order"
    return timings


@pytest.fixture(scope="module")
def sweep(report):
    series = {"no PI": [], "PI identifier": [], "PI bitmap": []}
    for rate in SWEEP_RATES:
        timings = _run_point(rate)
        for label in series:
            series[label].append(timings[label])
    report(
        format_series(
            f"Figure 5: full sort vs exception rate ({BENCH_ROWS} rows; "
            "paper: PI wins at all rates, gain shrinks with rate)",
            "rate",
            SWEEP_RATES,
            series,
        )
    )
    return series


def test_fig5_sweep_and_shape(benchmark, sweep):
    table = _make_table(0.05)
    index = PatchIndex.create("pi", table, "s", "sorted")
    index.detach()
    operator = _sort_plan(table, index)
    benchmark(lambda: collect(operator))
    no_pi = sweep["no PI"]
    ident = sweep["PI identifier"]
    # PI wins in the low-rate regime (the first half of the grid).
    low = len(SWEEP_RATES) // 2
    low_wins = sum(
        1 for base, patched in zip(no_pi[:low], ident[:low]) if patched < base
    )
    assert low_wins >= low - 1, (no_pi, ident)
    # At high rates the gap stays bounded (near parity, paper: shrinking
    # gain) — never a blow-up.
    for base, patched in zip(no_pi, ident):
        assert patched < 1.6 * base, (no_pi, ident)
    # Baseline grows with disorder: the last point is slower than the first.
    assert no_pi[-1] > no_pi[0]


@pytest.mark.parametrize("rate", [0.01, 0.4])
def test_fig5_no_patchindex(benchmark, rate):
    table = _make_table(rate)
    operator = _sort_plan(table, None)
    benchmark(lambda: collect(operator))


@pytest.mark.parametrize("rate", [0.01, 0.4])
def test_fig5_with_patchindex(benchmark, rate):
    table = _make_table(rate)
    index = PatchIndex.create("pi", table, "s", "sorted")
    index.detach()
    operator = _sort_plan(table, index)
    benchmark(lambda: collect(operator))
