"""Ablation: does the cost model decide correctly? (paper §VIII)

The paper's future work asks for "a cost model covering additional
costs of the PatchIndex usage"; this repo implements one
(:mod:`repro.core.cost_model`).  This ablation validates it empirically:
for each use case and exception rate, measure both plans, derive the
*measured* best choice, and compare it with the model's prediction.

The model only has to be right about the *sign* near its calibrated
breakeven; a small disagreement band around the crossover is expected
(both plans cost nearly the same there, so either choice is cheap).
"""

from __future__ import annotations

import pytest

from repro.bench.harness import measure
from repro.bench.reporting import format_table
from repro.core.cost_model import CostModel
from repro.core.patch_index import PatchIndex, PatchIndexMode
from repro.exec.operators.aggregate import AggregateSpec
from repro.exec.operators.sort import SortKey
from repro.exec.result import collect
from repro.plan import logical as lp
from repro.plan.optimizer import Optimizer, OptimizerOptions
from repro.plan.physical import PhysicalPlanner
from repro.storage.catalog import Catalog
from repro.gen.synthetic import synthetic_table

from conftest import BENCH_ROWS

RATES = [0.005, 0.05, 0.3, 0.7]


def _plans(use_case: str, rate: float):
    """Build (plain operator, patched operator, n, p) for a use case."""
    kind = "unique" if use_case == "distinct" else "sorted"
    column = "u" if use_case == "distinct" else "s"
    table = synthetic_table(
        f"cm_{use_case}_{rate}",
        BENCH_ROWS,
        unique_exception_rate=rate if kind == "unique" else 0.0,
        sorted_exception_rate=rate if kind == "sorted" else 0.0,
        partition_count=4,
        seed=int(rate * 1000) + 71,
    )
    index = PatchIndex.create(
        "pi", table, column, kind, mode=PatchIndexMode.BITMAP
    )
    index.detach()
    catalog = Catalog()
    catalog.add_table(table)
    catalog.add_index(index)
    if use_case == "distinct":
        logical = lp.LogicalAggregate(
            lp.LogicalScan(table, (column,)),
            (),
            (AggregateSpec("count_distinct", column, "n"),),
        )
    else:
        logical = lp.LogicalSort(
            lp.LogicalScan(table, (column,)), (SortKey(column),)
        )
    planner = PhysicalPlanner()
    plain = planner.plan(logical)
    patched = planner.plan(
        Optimizer(catalog, OptimizerOptions(always_rewrite=True)).optimize(
            logical
        )
    )
    return plain, patched, table.row_count, index.patch_count


def test_cost_model_decision_accuracy(benchmark, report):
    model = CostModel()
    rows = []
    agreements = 0
    decisions = 0
    for use_case in ("distinct", "sort"):
        for rate in RATES:
            plain, patched, n, p = _plans(use_case, rate)
            plain_run = measure(lambda op=plain: collect(op))
            patched_run = measure(lambda op=patched: collect(op))
            measured_best = (
                "patched" if patched_run.seconds < plain_run.seconds else "plain"
            )
            predicted = (
                "patched" if model.should_rewrite(use_case, n, p) else "plain"
            )
            margin = abs(plain_run.seconds - patched_run.seconds) / max(
                plain_run.seconds, patched_run.seconds
            )
            decisive = margin > 0.15  # near-ties don't count either way
            if decisive:
                decisions += 1
                agreements += predicted == measured_best
            rows.append(
                [
                    use_case,
                    rate,
                    plain_run.milliseconds,
                    patched_run.milliseconds,
                    measured_best,
                    predicted,
                    "✓" if predicted == measured_best else ("~" if not decisive else "✗"),
                ]
            )
    report(
        format_table(
            f"Ablation §VIII: cost-model decisions vs measurement "
            f"({BENCH_ROWS} rows; '~' = near-tie, not scored)",
            ["use case", "rate", "plain [ms]", "patched [ms]", "best", "model", "ok"],
            rows,
        )
    )
    # The model must agree on every decisive case.
    assert decisions == 0 or agreements / decisions >= 0.75, rows
    plain, patched, __, __ = _plans("distinct", 0.05)
    benchmark(lambda: collect(patched))
