"""Figure 4 (paper §VII-B1): count-distinct runtime vs exception rate.

Paper setup: 100 M-row synthetic table, uniqueness exceptions placed at
random locations, evenly distributed into 100 K duplicate values; a
count-distinct query runs with and without a PatchIndex (both physical
designs).

Shape to reproduce:
- the PatchIndex plans win at every exception rate;
- PI runtime grows slowly with the rate (more patches to aggregate);
- no-PI runtime is flat to slightly decreasing (fewer distinct groups);
- identifier-based and bitmap-based designs behave similarly.
"""

from __future__ import annotations

import pytest

from repro.bench.harness import measure
from repro.bench.reporting import format_series
from repro.core.patch_index import PatchIndex, PatchIndexMode
from repro.exec.operators.aggregate import AggregateSpec
from repro.exec.result import collect
from repro.plan import logical as lp
from repro.plan.optimizer import Optimizer, OptimizerOptions
from repro.plan.physical import PhysicalPlanner
from repro.storage.catalog import Catalog
from repro.gen.synthetic import synthetic_table

from conftest import BENCH_ROWS, SWEEP_RATES


def _make_table(rate: float):
    return synthetic_table(
        f"fig4_{rate}",
        BENCH_ROWS,
        unique_exception_rate=rate,
        partition_count=4,
        seed=int(rate * 1000) + 1,
    )


def _count_distinct_plan(table, index: PatchIndex | None):
    catalog = Catalog()
    catalog.add_table(table)
    if index is not None:
        catalog.add_index(index)
    plan = lp.LogicalAggregate(
        lp.LogicalScan(table, ("u",)),
        (),
        (AggregateSpec("count_distinct", "u", "n"),),
    )
    options = OptimizerOptions(
        use_patch_indexes=index is not None, always_rewrite=index is not None
    )
    optimized = Optimizer(catalog, options).optimize(plan)
    return PhysicalPlanner().plan(optimized)


def _run_point(rate: float) -> dict[str, float]:
    table = _make_table(rate)
    ident = PatchIndex.create(
        "pi_i", table, "u", "unique", mode=PatchIndexMode.IDENTIFIER
    )
    bitmap = PatchIndex.create(
        "pi_b", table, "u", "unique", mode=PatchIndexMode.BITMAP
    )
    ident.detach()
    bitmap.detach()
    plans = {
        "no PI": _count_distinct_plan(table, None),
        "PI identifier": _count_distinct_plan(table, ident),
        "PI bitmap": _count_distinct_plan(table, bitmap),
    }
    results = {}
    timings = {}
    for label, operator in plans.items():
        run = measure(lambda op=operator: collect(op))
        timings[label] = run.milliseconds
        results[label] = run.result.column("n")[0]
    # All three plans must agree on the answer.
    assert len(set(results.values())) == 1, results
    return timings


@pytest.fixture(scope="module")
def sweep(report):
    series = {"no PI": [], "PI identifier": [], "PI bitmap": []}
    for rate in SWEEP_RATES:
        timings = _run_point(rate)
        for label in series:
            series[label].append(timings[label])
    report(
        format_series(
            f"Figure 4: count distinct vs exception rate ({BENCH_ROWS} rows; "
            "paper: PI wins at all rates, both designs similar)",
            "rate",
            SWEEP_RATES,
            series,
        )
    )
    return series


def test_fig4_sweep_and_shape(benchmark, sweep):
    # Representative benchmark point for the pytest-benchmark table.
    table = _make_table(0.05)
    index = PatchIndex.create("pi", table, "u", "unique")
    index.detach()
    operator = _count_distinct_plan(table, index)
    benchmark(lambda: collect(operator))
    # Shape assertions (coarse, robust to noise):
    no_pi = sweep["no PI"]
    ident = sweep["PI identifier"]
    bitmap = sweep["PI bitmap"]
    wins = sum(
        1
        for baseline, patched in zip(no_pi, ident)
        if patched < baseline
    )
    assert wins >= len(SWEEP_RATES) - 2, (no_pi, ident)
    # The two designs stay within 2x of each other everywhere.
    for left, right in zip(ident, bitmap):
        assert 0.5 < left / right < 2.0


@pytest.mark.parametrize("rate", [0.01, 0.4])
def test_fig4_no_patchindex(benchmark, rate):
    table = _make_table(rate)
    operator = _count_distinct_plan(table, None)
    benchmark(lambda: collect(operator))


@pytest.mark.parametrize("rate", [0.01, 0.4])
def test_fig4_with_patchindex(benchmark, rate):
    table = _make_table(rate)
    index = PatchIndex.create("pi", table, "u", "unique")
    index.detach()
    operator = _count_distinct_plan(table, index)
    benchmark(lambda: collect(operator))
