#!/usr/bin/env python3
"""Whole-source lock-graph analysis — lint rules L11, L12, L13.

Usage::

    python tools/lockgraph.py src
    python tools/lockgraph.py --select L12 src/repro/storage/engine.py

Unlike the per-file rules in ``repro_lint.py``, these checks need a
*program-wide* view: which classes own which ``threading.Lock`` /
``RLock`` / ``asyncio.Lock`` attributes (including locks built through
``repro.check.sanitize.make_lock``), which ``with`` blocks nest, and —
one call hop deep — which methods acquire locks or block while a caller
already holds one.

Rules
-----

L11 lock-order
    Build the acquisition-order graph: an edge A→B whenever B is
    acquired (directly, or one resolved call away) while A is held.
    Any cycle is a potential deadlock; a self-edge on a non-reentrant
    lock is a guaranteed one.  Reentrant locks may self-nest.

L12 no-blocking-under-lock
    Blocking operations — ``os.fsync``, ``os.replace``, ``open()``,
    ``time.sleep``, ``shutil.rmtree``, synchronous socket calls, and
    ``await`` under a *threading* lock — stall every other thread
    queued on that lock (and extend L3/L9 reasoning into lock scopes).
    Checked directly and one resolved call hop deep.

L13 guarded-attribute-access
    An attribute the class writes under its own lock (outside
    ``__init__``) is *guarded*.  Rebinding-guarded attributes must not
    be read or written outside a lock scope; container-guarded
    attributes (only ever mutated in place under the lock) must not be
    mutated outside one.  Methods named ``*_locked`` are treated as
    executing with the lock already held — and calling one without
    holding the lock is itself a finding.  The same contract applies to
    module globals guarded by a module-level lock.

Any finding can be suppressed with ``# lock-ok: <reason>`` on the
offending line; for L12, a marker on the enclosing ``with`` line
blesses the whole locked block (used for the checkpoint flip, whose
fsyncs under the snapshot lock are the atomicity contract itself).
A marker on a ``with`` line also removes that acquisition's L11 edges.

The resolver is deliberately an under-approximation: receivers resolve
through ``self``, annotated / constructor-assigned attribute types,
annotated parameters, local ``x = ClassName(...)`` bindings, and
imported module-level functions — anything else adds no edge.  Soundness
comes from the runtime half (``repro.check.sanitize``), which watches
the orders actually taken.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

RULES = ("L11", "L12", "L13")

LOCK_FACTORY_NAMES = ("Lock", "RLock", "make_lock")

#: Method names treated as in-place mutation of their receiver (kept in
#: sync with repro_lint.MUTATING_METHODS).
MUTATING_METHODS = frozenset(
    {
        "append", "add", "extend", "update", "pop", "popitem", "clear",
        "remove", "discard", "insert", "setdefault", "sort", "reverse",
    }
)

#: Blocking socket-ish methods flagged regardless of receiver type.
BLOCKING_METHODS = frozenset({"sendall", "recv", "accept", "connect"})

CONSTRUCTOR_NAMES = ("__init__", "__post_init__")

LOCK_OK = "# lock-ok:"

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@dataclass(frozen=True)
class Finding:
    path: Path
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@dataclass(frozen=True)
class LockDef:
    key: str            # graph-node id, e.g. "DurableEngine._snapshot_lock"
    kind: str           # "thread" | "async"
    reentrant: bool
    path: Path
    line: int


@dataclass
class FunctionInfo:
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    module: "ModuleInfo"
    cls: "ClassInfo | None"
    acquires: list[tuple[LockDef, int]] = field(default_factory=list)
    blocking: list[tuple[str, int]] = field(default_factory=list)


@dataclass
class ClassInfo:
    name: str
    node: ast.ClassDef
    module: "ModuleInfo"
    bases: list[str] = field(default_factory=list)
    locks: dict[str, LockDef] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    path: Path
    tree: ast.Module
    lockok_lines: set[int]
    stem: str
    module_locks: dict[str, LockDef] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    imports: dict[str, str] = field(default_factory=dict)


# -- small AST helpers ---------------------------------------------------------


def _lock_call(node: ast.AST) -> tuple[str, bool] | None:
    """(kind, reentrant) when *node* constructs a lock, else None."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        name = func.attr
        owner = func.value.id if isinstance(func.value, ast.Name) else ""
    elif isinstance(func, ast.Name):
        name = func.id
        owner = ""
    else:
        return None
    if name not in LOCK_FACTORY_NAMES:
        return None
    kind = "async" if owner == "asyncio" else "thread"
    reentrant = name == "RLock"
    if name == "make_lock":
        kind = "thread"
        for keyword in node.keywords:
            if (
                keyword.arg == "reentrant"
                and isinstance(keyword.value, ast.Constant)
            ):
                reentrant = bool(keyword.value.value)
    return kind, reentrant


def _self_attr(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _annotation_names(node: ast.AST) -> list[str]:
    """Identifier candidates inside a type annotation (incl. strings)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return _IDENT.findall(node.value)
    names: list[str] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.append(child.id)
    return names


def _blocking_name(call: ast.Call) -> str | None:
    """Dotted name of a blocking call, or None when the call is safe."""
    func = call.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "open"
    if isinstance(func, ast.Attribute):
        if isinstance(func.value, ast.Name):
            owner = func.value.id
            if owner == "time" and func.attr == "sleep":
                return "time.sleep"
            if owner == "os" and func.attr in ("fsync", "replace"):
                return f"os.{func.attr}"
            if owner == "socket":
                return f"socket.{func.attr}"
            if owner == "shutil" and func.attr == "rmtree":
                return "shutil.rmtree"
        if func.attr in BLOCKING_METHODS:
            return f"<receiver>.{func.attr}"
    return None


def _is_locked_name(name: str) -> bool:
    return name.endswith("_locked")


# -- pass 1: collection --------------------------------------------------------


class Program:
    def __init__(self) -> None:
        self.modules: list[ModuleInfo] = []
        self.classes_by_name: dict[str, ClassInfo | None] = {}
        self.functions_by_name: dict[str, FunctionInfo | None] = {}

    # ``None`` marks a name collision: resolution must stay unambiguous.
    def _register(self, table: dict, name: str, value) -> None:
        if name in table:
            table[name] = None
        else:
            table[name] = value

    def load(self, path: Path) -> None:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
        lockok = {
            number
            for number, text in enumerate(source.splitlines(), start=1)
            if LOCK_OK in text
        }
        stem = path.stem
        module = ModuleInfo(path, tree, lockok, stem)
        self.modules.append(module)

        for node in tree.body:
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    module.imports[alias.asname or alias.name] = alias.name
            elif isinstance(node, ast.Assign):
                lock = _lock_call(node.value)
                if lock is not None:
                    kind, reentrant = lock
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            module.module_locks[target.id] = LockDef(
                                f"{stem}.{target.id}", kind, reentrant,
                                path, node.lineno,
                            )
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(node.name, node, module, None)
                module.functions[node.name] = info
                self._register(self.functions_by_name, node.name, info)
            elif isinstance(node, ast.ClassDef):
                self._load_class(module, node)

    def _load_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        cls = ClassInfo(node.name, node, module)
        cls.bases = [
            base.id for base in node.bases if isinstance(base, ast.Name)
        ]
        module.classes[node.name] = cls
        self._register(self.classes_by_name, node.name, cls)
        for child in ast.walk(node):
            if isinstance(child, ast.Assign):
                attr = None
                for target in child.targets:
                    attr = attr or _self_attr(target)
                if attr is None:
                    continue
                lock = _lock_call(child.value)
                if lock is not None:
                    kind, reentrant = lock
                    cls.locks[attr] = LockDef(
                        f"{node.name}.{attr}", kind, reentrant,
                        module.path, child.lineno,
                    )
                elif (
                    isinstance(child.value, ast.Call)
                    and isinstance(child.value.func, ast.Name)
                ):
                    cls.attr_types.setdefault(attr, child.value.func.id)
            elif isinstance(child, ast.AnnAssign):
                attr = _self_attr(child.target)
                if attr is not None:
                    for name in _annotation_names(child.annotation):
                        cls.attr_types.setdefault(attr, name)
                        break
        for method in node.body:
            if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[method.name] = FunctionInfo(
                    method.name, method, module, cls
                )
                if method.name in CONSTRUCTOR_NAMES:
                    self._propagate_param_types(cls, method)

    def _propagate_param_types(self, cls: ClassInfo, ctor) -> None:
        """``def __init__(self, cache: BlockCache); self._c = cache``."""
        param_types: dict[str, str] = {}
        for arg in ctor.args.args + ctor.args.kwonlyargs:
            if arg.annotation is not None:
                names = _annotation_names(arg.annotation)
                if names:
                    param_types[arg.arg] = names[0]
        for child in ast.walk(ctor):
            if isinstance(child, ast.Assign) and isinstance(
                child.value, ast.Name
            ):
                for target in child.targets:
                    attr = _self_attr(target)
                    if attr and child.value.id in param_types:
                        cls.attr_types.setdefault(
                            attr, param_types[child.value.id]
                        )

    # -- resolution --------------------------------------------------------

    def resolve_class(self, name: str | None) -> ClassInfo | None:
        if not name:
            return None
        return self.classes_by_name.get(name) or None

    def resolve_method(
        self, cls: ClassInfo | None, name: str, depth: int = 0
    ) -> FunctionInfo | None:
        if cls is None or depth > 4:
            return None
        if name in cls.methods:
            return cls.methods[name]
        for base in cls.bases:
            found = self.resolve_method(
                self.resolve_class(base), name, depth + 1
            )
            if found is not None:
                return found
        return None


# -- pass 1.5: per-function summaries ------------------------------------------


def _function_locals(fn: FunctionInfo, program: Program) -> dict[str, str]:
    """Local / parameter name -> class-name type, best effort."""
    types: dict[str, str] = {}
    node = fn.node
    for arg in node.args.args + node.args.kwonlyargs:
        if arg.annotation is not None:
            names = _annotation_names(arg.annotation)
            if names and program.resolve_class(names[0]):
                types[arg.arg] = names[0]
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Assign)
            and isinstance(child.value, ast.Call)
            and isinstance(child.value.func, ast.Name)
            and program.resolve_class(child.value.func.id)
        ):
            for target in child.targets:
                if isinstance(target, ast.Name):
                    types[target.id] = child.value.func.id
    return types


def _infer_type(
    expr: ast.AST,
    fn: FunctionInfo,
    local_types: dict[str, str],
    program: Program,
    depth: int = 0,
) -> ClassInfo | None:
    """Receiver type of an expression, through attribute chains."""
    if depth > 3:
        return None
    if isinstance(expr, ast.Name):
        if expr.id == "self":
            return fn.cls
        return program.resolve_class(local_types.get(expr.id))
    if isinstance(expr, ast.Attribute):
        owner = _infer_type(expr.value, fn, local_types, program, depth + 1)
        if owner is not None:
            return program.resolve_class(owner.attr_types.get(expr.attr))
    return None


def _resolve_lock_expr(
    expr: ast.AST,
    fn: FunctionInfo,
    local_types: dict[str, str],
    program: Program,
) -> LockDef | None:
    """The LockDef a ``with`` context expression acquires, if known."""
    if isinstance(expr, ast.Name):
        return fn.module.module_locks.get(expr.id)
    if isinstance(expr, ast.Attribute):
        owner = _infer_type(expr.value, fn, local_types, program)
        if owner is not None:
            return owner.locks.get(expr.attr)
    return None


def _iter_skipping_nested_defs(node: ast.AST):
    """Walk *node* without descending into nested function bodies."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(
            child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def summarize_function(fn: FunctionInfo, program: Program) -> None:
    local_types = _function_locals(fn, program)
    for node in _iter_skipping_nested_defs(fn.node):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                lock = _resolve_lock_expr(
                    item.context_expr, fn, local_types, program
                )
                if lock is not None:
                    fn.acquires.append((lock, node.lineno))
        elif isinstance(node, ast.Call):
            name = _blocking_name(node)
            if name is not None:
                fn.blocking.append((name, node.lineno))


# -- pass 2: held-lock walk (edges + L12) --------------------------------------


@dataclass(frozen=True)
class Edge:
    src: LockDef
    dst: LockDef
    path: Path
    line: int
    via: str  # "" for a direct nested with, else the callee name


class HeldWalker:
    def __init__(self, program: Program, edges: dict, findings: list):
        self.program = program
        self.edges = edges
        self.findings = findings

    def _suppressed(self, module: ModuleInfo, line: int, held) -> bool:
        if line in module.lockok_lines:
            return True
        return any(
            acquired_line in module.lockok_lines
            and lock.path == module.path
            for lock, acquired_line in held
        )

    def _add_edge(self, src: LockDef, dst: LockDef, module, line, via):
        if src.key == dst.key and src.reentrant:
            return
        key = (src.key, dst.key)
        self.edges.setdefault(
            key, Edge(src, dst, module.path, line, via)
        )

    def _flag_blocking(self, module, line, name, held, via=""):
        if self._suppressed(module, line, held):
            return
        lock_names = ", ".join(sorted({lock.key for lock, _ in held}))
        detail = f" (via {via}())" if via else ""
        self.findings.append(
            Finding(
                module.path,
                line,
                "L12",
                f"blocking call {name}{detail} while holding lock(s) "
                f"{lock_names}; move the slow work outside the lock or "
                "mark the line '# lock-ok: <reason>'",
            )
        )

    def walk_function(self, fn: FunctionInfo) -> None:
        local_types = _function_locals(fn, self.program)
        self._visit_body(fn.node.body, fn, local_types, [])

    def _visit_body(self, body, fn, local_types, held) -> None:
        for statement in body:
            self._visit(statement, fn, local_types, held)

    def _visit(self, node, fn, local_types, held) -> None:
        module = fn.module
        if isinstance(node, (ast.With, ast.AsyncWith)):
            acquired = list(held)
            for item in node.items:
                self._visit(item.context_expr, fn, local_types, held)
                lock = _resolve_lock_expr(
                    item.context_expr, fn, local_types, self.program
                )
                if lock is None:
                    continue
                if node.lineno not in module.lockok_lines:
                    for prior, _ in acquired:
                        self._add_edge(
                            prior, lock, module, node.lineno, ""
                        )
                acquired = acquired + [(lock, node.lineno)]
            self._visit_body(node.body, fn, local_types, acquired)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs run later, on whichever thread calls them —
            # not under the locks currently held here.
            nested = FunctionInfo(node.name, node, fn.module, fn.cls)
            nested_types = _function_locals(nested, self.program)
            self._visit_body(node.body, nested, nested_types, [])
            return
        if isinstance(node, ast.Lambda):
            return
        if isinstance(node, ast.Await) and held:
            thread_locks = [
                (lock, line) for lock, line in held if lock.kind == "thread"
            ]
            if thread_locks and not self._suppressed(
                module, node.lineno, held
            ):
                names = ", ".join(
                    sorted({lock.key for lock, _ in thread_locks})
                )
                self.findings.append(
                    Finding(
                        module.path,
                        node.lineno,
                        "L12",
                        f"await while holding threading lock(s) {names}; "
                        "the lock blocks other threads across the "
                        "suspension point",
                    )
                )
        if isinstance(node, ast.Call) and held:
            blocking = _blocking_name(node)
            if blocking is not None:
                self._flag_blocking(module, node.lineno, blocking, held)
            else:
                callee = self._resolve_callee(node, fn, local_types)
                if callee is not None:
                    for lock, _ in callee.acquires:
                        for prior, _ in held:
                            if node.lineno not in module.lockok_lines:
                                self._add_edge(
                                    prior, lock, module, node.lineno,
                                    callee.name,
                                )
                    for name, _ in callee.blocking:
                        self._flag_blocking(
                            module, node.lineno, name, held,
                            via=callee.name,
                        )
        for child in ast.iter_child_nodes(node):
            self._visit(child, fn, local_types, held)

    def _resolve_callee(
        self, call: ast.Call, fn: FunctionInfo, local_types
    ) -> FunctionInfo | None:
        func = call.func
        program = self.program
        if isinstance(func, ast.Name):
            target = fn.module.functions.get(func.id)
            if target is not None:
                return target
            imported = fn.module.imports.get(func.id, func.id)
            resolved = program.functions_by_name.get(imported)
            return resolved
        if isinstance(func, ast.Attribute):
            owner = _infer_type(func.value, fn, local_types, program)
            if owner is not None:
                return program.resolve_method(owner, func.attr)
            if isinstance(func.value, ast.Name):
                cls = program.resolve_class(func.value.id)
                if cls is not None:
                    return program.resolve_method(cls, func.attr)
        return None


# -- L11: cycles ---------------------------------------------------------------


def _strongly_connected(adjacency: dict[str, set[str]]) -> list[set[str]]:
    """Tarjan's SCC, iterative (the graph is tiny but recursion is rude)."""
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[set[str]] = []
    counter = [0]

    for root in adjacency:
        if root in index:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, child_index = work[-1]
            if child_index == 0:
                index[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            children = sorted(adjacency.get(node, ()))
            if child_index < len(children):
                work[-1] = (node, child_index + 1)
                child = children[child_index]
                if child not in index:
                    work.append((child, 0))
                elif child in on_stack:
                    low[node] = min(low[node], index[child])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(component)
    return components


def find_cycles(edges: dict[tuple[str, str], Edge]) -> list[Finding]:
    adjacency: dict[str, set[str]] = {}
    for (src, dst), _ in edges.items():
        adjacency.setdefault(src, set()).add(dst)
        adjacency.setdefault(dst, set())
    findings: list[Finding] = []
    for component in _strongly_connected(adjacency):
        members = sorted(component)
        cyclic = len(members) > 1
        for (src, dst), edge in sorted(edges.items()):
            in_cycle = cyclic and src in component and dst in component
            self_deadlock = src == dst and not edge.src.reentrant
            if not (in_cycle or self_deadlock):
                continue
            if self_deadlock and src not in component:
                continue
            via = f" via {edge.via}()" if edge.via else ""
            if self_deadlock:
                message = (
                    f"non-reentrant lock {src} re-acquired while already "
                    f"held{via}; this self-deadlocks — use make_lock("
                    "reentrant=True) or restructure"
                )
            else:
                message = (
                    f"lock-order cycle {' -> '.join(members)} -> "
                    f"{members[0]}: edge {src} -> {dst} acquired "
                    f"here{via}, opposite order exists elsewhere"
                )
            findings.append(Finding(edge.path, edge.line, "L11", message))
    # Deduplicate self-deadlock edges reported once per component pass.
    return sorted(set(findings), key=lambda f: (str(f.path), f.line))


# -- L13: guarded attribute access ---------------------------------------------


class GuardedAttrChecker:
    """Per-class (and per-module) guarded-state access checking."""

    def __init__(self, program: Program, findings: list[Finding]):
        self.program = program
        self.findings = findings

    # -- shared machinery --------------------------------------------------

    def _collect(self, fn_nodes, lock_names, owned_attr, locked_default):
        """(rebind_guarded, container_guarded) over the given functions."""
        rebind: set[str] = set()
        container: set[str] = set()

        def scan(node, locked):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = locked or _with_uses(node, lock_names)
                for item in node.items:
                    scan(item.context_expr, locked)
                for child in node.body:
                    scan(child, inner)
                return
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                body = (
                    node.body
                    if not isinstance(node, ast.Lambda)
                    else [node.body]
                )
                for child in body:
                    scan(child, False)
                return
            if locked:
                for attr, kind in _written_attrs(node, owned_attr):
                    if attr in lock_names:
                        continue
                    (rebind if kind == "rebind" else container).add(attr)
            for child in ast.iter_child_nodes(node):
                scan(child, locked)

        for fn_node, locked_start in fn_nodes:
            for statement in fn_node.body:
                scan(statement, locked_start or locked_default)
        return rebind, container

    def _check(
        self,
        fn,
        lock_names,
        owned_attr,
        rebind,
        container,
        locked_methods,
        locked_start,
    ):
        module = fn.module

        def flag(line, message):
            if line not in module.lockok_lines:
                self.findings.append(
                    Finding(module.path, line, "L13", message)
                )

        def visit(node, locked):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = locked or _with_uses(node, lock_names)
                for item in node.items:
                    visit(item.context_expr, locked)
                for child in node.body:
                    visit(child, inner)
                return
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                body = (
                    node.body
                    if not isinstance(node, ast.Lambda)
                    else [node.body]
                )
                for child in body:
                    visit(child, False)
                return
            if not locked:
                for attr, kind in _written_attrs(node, owned_attr):
                    if attr in rebind or attr in container:
                        flag(
                            node.lineno,
                            f"write to lock-guarded {attr!r} outside the "
                            "owning lock",
                        )
                callee = None
                if isinstance(node, ast.Call):
                    if (
                        isinstance(node.func, ast.Attribute)
                        and isinstance(node.func.value, ast.Name)
                        and node.func.value.id == "self"
                    ):
                        callee = node.func.attr
                    elif isinstance(node.func, ast.Name):
                        callee = node.func.id
                if (
                    callee is not None
                    and _is_locked_name(callee)
                    and callee in locked_methods
                ):
                    flag(
                        node.lineno,
                        f"call to {callee}() without holding the "
                        "lock its name promises",
                    )
                if (
                    isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                ):
                    attr = owned_attr(node)
                    if attr in rebind:
                        flag(
                            node.lineno,
                            f"read of lock-guarded {attr!r} outside the "
                            "owning lock",
                        )
            # Do not re-read assignment targets as loads.
            children = _visit_children(node)
            for child in children:
                visit(child, locked)

        for statement in fn.node.body:
            visit(statement, locked_start)

    # -- class-level -------------------------------------------------------

    def check_class(self, cls: ClassInfo) -> None:
        if not cls.locks:
            return
        lock_names = set(cls.locks)
        collect_nodes = [
            (method.node, _is_locked_name(name))
            for name, method in cls.methods.items()
            if name not in CONSTRUCTOR_NAMES
        ]
        rebind, container = self._collect(
            collect_nodes, lock_names, _self_attr, False
        )
        if not rebind and not container:
            return
        locked_methods = {
            name for name in cls.methods if _is_locked_name(name)
        }
        for name, method in cls.methods.items():
            if name in CONSTRUCTOR_NAMES or _is_locked_name(name):
                continue
            self._check(
                method, lock_names, _self_attr, rebind, container,
                locked_methods, False,
            )

    # -- module-level ------------------------------------------------------

    def check_module(self, module: ModuleInfo) -> None:
        if not module.module_locks:
            return
        lock_names = set(module.module_locks)

        def global_name(node):
            if isinstance(node, ast.Name):
                return node.id
            return None

        collect_nodes = [
            (fn.node, _is_locked_name(name))
            for name, fn in module.functions.items()
        ]
        rebind, container = self._collect(
            collect_nodes, lock_names, global_name, False
        )
        # Only names actually declared ``global`` somewhere are shared
        # module state; plain locals shadow freely.
        declared = {
            name
            for fn in module.functions.values()
            for stmt in ast.walk(fn.node)
            if isinstance(stmt, ast.Global)
            for name in stmt.names
        }
        rebind &= declared
        container &= declared
        if not rebind and not container:
            return
        locked_functions = {
            name for name in module.functions if _is_locked_name(name)
        }
        for name, fn in module.functions.items():
            if _is_locked_name(name):
                continue

            def scoped(node, names=rebind | container, fn=fn):
                # Within a function, only names it declares global (or
                # reads without local binding) refer to module state;
                # keep it simple and only check declared globals plus
                # bare reads of guarded names.
                return global_name(node)

            self._check(
                fn, lock_names, scoped, rebind, container,
                locked_functions, False,
            )


def _with_uses(node, lock_names: set[str]) -> bool:
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Attribute) and expr.attr in lock_names:
            return True
        if isinstance(expr, ast.Name) and expr.id in lock_names:
            return True
    return False


def _written_attrs(node: ast.AST, owned_attr) -> list[tuple[str, str]]:
    """(attr, "rebind"|"container") pairs this statement writes."""
    written: list[tuple[str, str]] = []

    def target_attrs(target, kind):
        attr = owned_attr(target)
        if attr is not None:
            written.append((attr, kind))
            return
        if isinstance(target, ast.Subscript):
            attr = owned_attr(target.value)
            if attr is not None:
                written.append((attr, "container"))
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                target_attrs(element, kind)

    if isinstance(node, ast.Assign):
        for target in node.targets:
            target_attrs(target, "rebind")
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        target_attrs(node.target, "rebind")
    elif isinstance(node, ast.Delete):
        for target in node.targets:
            target_attrs(target, "rebind")
    elif isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATING_METHODS:
            attr = owned_attr(func.value)
            if attr is not None:
                written.append((attr, "container"))
    return written


def _visit_children(node: ast.AST) -> list[ast.AST]:
    """Children to recurse into, minus store-context attribute targets."""
    if isinstance(node, ast.Assign):
        children: list[ast.AST] = [node.value]
        for target in node.targets:
            children.extend(_target_read_parts(target))
        return children
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        children = [node.value] if node.value is not None else []
        children.extend(_target_read_parts(node.target))
        return children
    if isinstance(node, ast.Delete):
        children = []
        for target in node.targets:
            children.extend(_target_read_parts(target))
        return children
    return list(ast.iter_child_nodes(node))


def _target_read_parts(target: ast.AST) -> list[ast.AST]:
    """Sub-expressions of an assignment target that are genuine reads."""
    if isinstance(target, ast.Subscript):
        # ``self._d[k] = v`` reads k (and conceptually self._d, but that
        # read is the container mutation already classified).
        return [target.slice]
    if isinstance(target, (ast.Tuple, ast.List)):
        parts: list[ast.AST] = []
        for element in target.elts:
            parts.extend(_target_read_parts(element))
        return parts
    if isinstance(target, ast.Attribute):
        return []
    if isinstance(target, ast.Starred):
        return _target_read_parts(target.value)
    return [target] if not isinstance(target, ast.Name) else []


# -- driver --------------------------------------------------------------------


def iter_python_files(roots: list[str]) -> list[Path]:
    files: list[Path] = []
    for root in roots:
        path = Path(root)
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        else:
            files.extend(sorted(path.rglob("*.py")))
    return [
        path
        for path in files
        if "tests" not in path.parts and not path.name.startswith("test_")
    ]


def analyze(paths: list[Path]) -> list[Finding]:
    program = Program()
    for path in paths:
        program.load(path)

    all_functions: list[FunctionInfo] = []
    for module in program.modules:
        all_functions.extend(module.functions.values())
        for cls in module.classes.values():
            all_functions.extend(cls.methods.values())
    for fn in all_functions:
        summarize_function(fn, program)

    findings: list[Finding] = []
    edges: dict[tuple[str, str], Edge] = {}
    walker = HeldWalker(program, edges, findings)
    for fn in all_functions:
        walker.walk_function(fn)
    findings.extend(find_cycles(edges))

    guarded = GuardedAttrChecker(program, findings)
    for module in program.modules:
        guarded.check_module(module)
        for cls in module.classes.values():
            guarded.check_class(cls)

    findings.sort(key=lambda f: (str(f.path), f.line, f.rule))
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("roots", nargs="*", default=["src"])
    parser.add_argument(
        "--select",
        default=",".join(RULES),
        help="comma-separated rule subset, e.g. L11,L12",
    )
    options = parser.parse_args(argv)
    selected = {rule.strip() for rule in options.select.split(",") if rule}
    findings = [
        finding
        for finding in analyze(iter_python_files(options.roots or ["src"]))
        if finding.rule in selected
    ]
    for finding in findings:
        print(finding.render())
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"lockgraph: {status}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
