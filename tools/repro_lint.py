#!/usr/bin/env python3
"""Project lint for the repro engine — stdlib-ast static checks.

Usage::

    python tools/repro_lint.py src tests
    python tools/repro_lint.py --select L2,L11 src/repro/storage/engine.py
    python tools/repro_lint.py --format json src
    python tools/repro_lint.py --format github src tests   # CI annotations

Walks the given trees (files under a ``tests`` directory or named
``test_*.py`` are *test* files, everything else is *source*) and
enforces the project's own invariants, which generic linters cannot
know.  Exit status is 0 when clean, 1 when any finding is reported.

Rules
-----

L1  no-bare-assert
    ``assert`` statements in source files vanish under ``python -O``;
    load-bearing checks must raise a typed exception from
    ``repro.errors`` instead.  (Tests may assert freely.)

L2  lock-discipline
    In ``exec/parallel/`` and ``obs/`` — the only modules touched by
    concurrent workers — any class that owns a ``threading.Lock`` must
    mutate its attributes inside a ``with self._lock`` block
    (constructors are exempt: no other thread can hold a reference
    yet).  Module-level globals guarded by a module lock get the same
    treatment inside functions that declare them ``global``.

L3  fsync-discipline
    In ``storage/wal.py`` / ``storage/engine.py``, every file opened
    for writing must reach an ``os.fsync`` before the ``with`` block
    ends, or carry an explicit ``# no-fsync: <reason>`` marker on the
    ``with`` line — durability claims in the module docstrings must be
    backed by actual syncs.

L4  metric-namespaces
    Metric names passed to ``.counter() / .gauge() / .histogram()``
    must live in a documented namespace (see DESIGN.md §6):
    {namespaces}.  Dynamic names are resolved one assignment deep
    within the enclosing function; anything still undecidable is a
    finding, so no name can dodge the registry taxonomy.

L5  no-deprecated-api
    The deprecated ``execute_sql`` / ``run_select`` shims must not be
    used in source (outside their definition site) and may appear in
    tests only inside a ``pytest.warns`` block that asserts the
    deprecation fires.

L6  explicit-dtype
    ``np.empty / np.zeros / np.full / np.ndarray`` in operator code
    must pass an explicit ``dtype`` — the float64 default silently
    widens integer columns and object arrays hide type errors until a
    kernel trips on them.

L7  no-stale-markers
    No ``TODO`` / ``FIXME`` / ``XXX`` / ``HACK`` comments in source;
    open work belongs in ROADMAP.md "Open items", not in drive-by
    markers that rot.

L8  no-raw-segment-decode
    ``np.frombuffer`` on segment payload bytes is allowed only inside
    the storage codec layer ({frombuffer_files}) — everything else must
    go through ``SegmentReader`` / the block cache, so the RSEG wire
    formats stay changeable in one place.

L9  no-blocking-io-in-coroutines
    Inside ``repro/serve/`` coroutine bodies (``async def``), blocking
    calls — ``time.sleep``, synchronous ``socket.*`` constructors,
    ``open()``, ``os.fsync`` — stall the event loop and every connected
    client with it.  Blocking work belongs on an executor thread
    (``run_in_executor``); nested synchronous ``def`` helpers are
    exempt because they only run when called, which is on the executor.

L10 patch-mutation-through-delta-layer
    Patch membership mutations — ``.extend`` / ``.add`` / ``.remove`` /
    ``.remap_after_delete`` on a patch-set receiver — are allowed only
    inside the delta layer ({delta_layer_files}).  Everything else must
    route through ``repro.core.delta.apply_ops`` so every membership
    change produces a loggable, replayable ``PatchDelta`` — a direct
    mutation would silently diverge recovery and snapshots from the
    live index.

L11 lock-order, L12 no-blocking-under-lock, L13 guarded-attribute-access
    The whole-source lock-graph rules, implemented in
    ``tools/lockgraph.py`` (see its docstring for the full contract):
    cycles in the lock-acquisition graph, blocking I/O / ``await``
    while holding a lock, and access to lock-guarded state outside the
    owning lock.  Methods named ``*_locked`` are treated as running
    with their class lock held; ``# lock-ok: <reason>`` suppresses a
    finding on its line.  These rules run over *source* trees only
    (tests mutate and assert freely).
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path

#: Documented MetricsRegistry namespaces (DESIGN.md §6).  A metric name
#: is valid when it equals a namespace or extends it with a dot.
METRIC_NAMESPACES = (
    "wal",
    "checkpoint",
    "recovery",
    "storage",
    "cache",
    "query",
    "statements",
    "patchselect",
    "parallel",
    "patchindex",
    "maintenance",
    "server",
    "session",
    "sanitize",
)

#: Source files allowed to call ``np.frombuffer`` (L8): the two codec
#: modules that own the RSEG wire formats, plus the parallel transport
#: (shm result frames and shipped patch-rowid blobs are its own wire
#: format, not segment payloads).
FROMBUFFER_ALLOWED_FILES = (
    "storage/segment.py",
    "core/compression.py",
    "exec/parallel/shm.py",
    "exec/parallel/worker.py",
)

#: Files allowed to mutate patch-set membership directly (L10): the
#: delta layer that turns mutations into replayable PatchDelta ops, and
#: the patch-set classes whose methods the ops resolve to.
DELTA_LAYER_FILES = (
    "core/delta.py",
    "core/patches.py",
)

__doc__ = __doc__.format(
    namespaces=", ".join(METRIC_NAMESPACES),
    frombuffer_files=", ".join(FROMBUFFER_ALLOWED_FILES),
    delta_layer_files=", ".join(DELTA_LAYER_FILES),
)

#: Directories whose classes are touched by concurrent workers (L2).
LOCK_CHECKED_DIRS = ("exec/parallel", "obs", "serve")

#: Individual storage files under the same lock discipline: the
#: checkpoint-flip lock, the snapshot catalog lock and the block cache.
LOCK_CHECKED_FILES = (
    "storage/engine.py",
    "storage/snapshot.py",
    "storage/cache.py",
)

#: Files whose write paths must fsync (L3).
FSYNC_CHECKED_FILES = ("storage/wal.py", "storage/engine.py")

#: Deprecated module-level entry points (L5) and their definition site.
DEPRECATED_NAMES = frozenset({"execute_sql", "run_select"})
DEPRECATED_DEFINITION_FILE = "sql/session.py"

#: Method names that mutate their receiver in place (L2).
MUTATING_METHODS = frozenset(
    {
        "append", "add", "extend", "update", "pop", "popitem", "clear",
        "remove", "discard", "insert", "setdefault", "sort", "reverse",
    }
)

#: ndarray constructors that must pass dtype in operator code (L6).
NDARRAY_CONSTRUCTORS = frozenset({"empty", "zeros", "full", "ndarray"})

MARKER_WORDS = ("TODO", "FIXME", "XXX", "HACK")


@dataclass(frozen=True)
class Finding:
    path: Path
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


def iter_python_files(roots: list[str]) -> list[Path]:
    files: list[Path] = []
    for root in roots:
        path = Path(root)
        if path.is_file() and path.suffix == ".py":
            files.append(path)
        else:
            files.extend(sorted(path.rglob("*.py")))
    return files


def is_test_file(path: Path) -> bool:
    return "tests" in path.parts or path.name.startswith("test_")


def posix(path: Path) -> str:
    return path.as_posix()


# -- L1 ------------------------------------------------------------------------


def check_bare_asserts(path: Path, tree: ast.AST) -> list[Finding]:
    return [
        Finding(
            path,
            node.lineno,
            "L1",
            "bare assert disappears under -O; raise a typed "
            "repro.errors exception",
        )
        for node in ast.walk(tree)
        if isinstance(node, ast.Assert)
    ]


# -- L2 ------------------------------------------------------------------------


def _is_lock_factory(node: ast.AST) -> bool:
    """``threading.Lock()`` / ``RLock()`` / sanitize ``make_lock()``."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    names = ("Lock", "RLock", "make_lock")
    if isinstance(func, ast.Attribute):
        return func.attr in names
    return isinstance(func, ast.Name) and func.id in names


def _with_uses_lock(
    node: ast.With | ast.AsyncWith, lock_names: set[str]
) -> bool:
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Attribute) and expr.attr in lock_names:
            return True
        if isinstance(expr, ast.Name) and expr.id in lock_names:
            return True
    return False


def _self_attribute(node: ast.AST) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _flag_unlocked_writes(
    path: Path,
    body: list[ast.stmt],
    lock_names: set[str],
    target_is_shared,
    locked: bool,
    findings: list[Finding],
) -> None:
    """Walk statements, flagging shared-state mutation outside the lock."""
    for statement in body:
        if isinstance(statement, (ast.With, ast.AsyncWith)) and _with_uses_lock(
            statement, lock_names
        ):
            _flag_unlocked_writes(
                path, statement.body, lock_names, target_is_shared, True,
                findings,
            )
            continue
        if not locked:
            for node in _statement_heads(statement):
                name = _written_shared_name(node, target_is_shared)
                if name is not None:
                    findings.append(
                        Finding(
                            path,
                            node.lineno,
                            "L2",
                            f"mutation of shared state {name!r} outside "
                            "the owning lock",
                        )
                    )
        for child_body in _nested_bodies(statement):
            _flag_unlocked_writes(
                path, child_body, lock_names, target_is_shared, locked,
                findings,
            )


def _statement_heads(statement: ast.stmt) -> list[ast.AST]:
    """The statement itself plus its non-body expressions."""
    heads: list[ast.AST] = [statement]
    if isinstance(statement, ast.Expr):
        heads.append(statement.value)
    return heads


def _nested_bodies(statement: ast.stmt) -> list[list[ast.stmt]]:
    bodies: list[list[ast.stmt]] = []
    for field in ("body", "orelse", "finalbody"):
        nested = getattr(statement, field, None)
        if nested:
            bodies.append(list(nested))
    for handler in getattr(statement, "handlers", []) or []:
        bodies.append(list(handler.body))
    return bodies


def _written_shared_name(node: ast.AST, target_is_shared) -> str | None:
    if isinstance(node, ast.Assign):
        for target in node.targets:
            name = target_is_shared(target)
            if name is not None:
                return name
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        return target_is_shared(node.target)
    elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
        func = node.value.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
        ):
            return target_is_shared(func.value)
    return None


def check_lock_discipline(path: Path, tree: ast.Module) -> list[Finding]:
    covered = any(
        part in posix(path) for part in LOCK_CHECKED_DIRS
    ) or posix(path).endswith(LOCK_CHECKED_FILES)
    if not covered:
        return []
    findings: list[Finding] = []

    # Module-level lock guarding module globals.
    module_locks = {
        target.id
        for node in tree.body
        if isinstance(node, ast.Assign) and _is_lock_factory(node.value)
        for target in node.targets
        if isinstance(target, ast.Name)
    }
    if module_locks:
        for node in tree.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared_globals = {
                name
                for stmt in ast.walk(node)
                if isinstance(stmt, ast.Global)
                for name in stmt.names
            }
            if not declared_globals:
                continue

            def global_target(target, names=declared_globals):
                if isinstance(target, ast.Name) and target.id in names:
                    return target.id
                return None

            _flag_unlocked_writes(
                path, node.body, module_locks, global_target, False, findings
            )

    # Classes owning an instance lock.
    for class_node in tree.body:
        if not isinstance(class_node, ast.ClassDef):
            continue
        instance_locks = {
            attr
            for node in ast.walk(class_node)
            if isinstance(node, ast.Assign) and _is_lock_factory(node.value)
            for target in node.targets
            if (attr := _self_attribute(target)) is not None
        }
        if not instance_locks:
            continue
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in ("__init__", "__post_init__"):
                continue
            # ``*_locked`` methods run with the lock already held by
            # their caller (L13 checks the call sites).
            locked = method.name.endswith("_locked")
            _flag_unlocked_writes(
                path, method.body, instance_locks, _self_attribute, locked,
                findings,
            )
    return findings


# -- L3 ------------------------------------------------------------------------


def _open_write_mode(call: ast.Call) -> bool:
    if not (isinstance(call.func, ast.Name) and call.func.id == "open"):
        return False
    mode = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for keyword in call.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if mode is None:
        return False  # default "r": read-only
    if not (isinstance(mode, ast.Constant) and isinstance(mode.value, str)):
        return True  # dynamic mode: treat as a write to stay safe
    return any(flag in mode.value for flag in ("w", "a", "+", "x"))


def _contains_fsync(body: list[ast.stmt]) -> bool:
    for statement in body:
        for node in ast.walk(statement):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "fsync"
            ):
                return True
    return False


def check_fsync_discipline(
    path: Path, tree: ast.AST, source_lines: list[str]
) -> list[Finding]:
    if not posix(path).endswith(FSYNC_CHECKED_FILES):
        return []
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.With):
            continue
        opens_for_write = any(
            isinstance(item.context_expr, ast.Call)
            and _open_write_mode(item.context_expr)
            for item in node.items
        )
        if not opens_for_write or _contains_fsync(node.body):
            continue
        line = source_lines[node.lineno - 1]
        if "# no-fsync:" in line:
            continue
        findings.append(
            Finding(
                path,
                node.lineno,
                "L3",
                "file opened for writing without an os.fsync on the "
                "write path; sync it or mark the line '# no-fsync: "
                "<reason>'",
            )
        )
    return findings


# -- L4 ------------------------------------------------------------------------


def _literal_prefix(node: ast.AST) -> str | None:
    """Leading literal text of a str constant or f-string, else None."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        head = node.values[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            return head.value
    return None


def _namespace_ok(prefix: str, complete: bool) -> bool:
    for namespace in METRIC_NAMESPACES:
        if complete and prefix == namespace:
            return True
        if prefix.startswith(namespace + "."):
            return True
        # A partial literal may stop inside the namespace word
        # (e.g. an f-string head "wal" + formatted tail).
        if not complete and namespace.startswith(prefix):
            return True
    return False


def check_metric_namespaces(path: Path, tree: ast.AST) -> list[Finding]:
    findings: list[Finding] = []
    for scope in ast.walk(tree):
        if not isinstance(
            scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Module)
        ):
            continue
        # One-assignment-deep resolution for dynamic name prefixes.
        local_prefixes: dict[str, str] = {}
        for node in ast.walk(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                prefix = _literal_prefix(node.value)
                if isinstance(target, ast.Name) and prefix is not None:
                    local_prefixes[target.id] = prefix
        for node in ast.walk(scope):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("counter", "gauge", "histogram")
                and node.args
            ):
                continue
            name_arg = node.args[0]
            prefix = _literal_prefix(name_arg)
            complete = isinstance(name_arg, ast.Constant)
            if prefix is None and isinstance(name_arg, ast.JoinedStr):
                head = name_arg.values[0]
                if isinstance(head, ast.FormattedValue) and isinstance(
                    head.value, ast.Name
                ):
                    prefix = local_prefixes.get(head.value.id)
                    complete = False
            if prefix is None:
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        "L4",
                        f"metric name passed to .{node.func.attr}() is "
                        "not statically resolvable; use a literal "
                        "namespace prefix",
                    )
                )
            elif not _namespace_ok(prefix, complete):
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        "L4",
                        f"metric name {prefix!r} is outside the "
                        "documented namespaces "
                        f"({', '.join(METRIC_NAMESPACES)})",
                    )
                )
    return findings


# -- L5 ------------------------------------------------------------------------


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _is_pytest_warns(node: ast.With) -> bool:
    for item in node.items:
        expr = item.context_expr
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr in ("warns", "deprecated_call")
        ):
            return True
    return False


def _flag_deprecated_calls(
    path: Path, node: ast.AST, warned: bool, findings: list[Finding]
) -> None:
    if isinstance(node, ast.With) and _is_pytest_warns(node):
        warned = True
    if (
        not warned
        and isinstance(node, ast.Call)
        and _call_name(node) in DEPRECATED_NAMES
    ):
        findings.append(
            Finding(
                path,
                node.lineno,
                "L5",
                f"call to deprecated {_call_name(node)}() outside a "
                "pytest.warns(DeprecationWarning) block",
            )
        )
    for child in ast.iter_child_nodes(node):
        _flag_deprecated_calls(path, child, warned, findings)


def check_deprecated_api(
    path: Path, tree: ast.Module, is_test: bool
) -> list[Finding]:
    if is_test:
        findings: list[Finding] = []
        _flag_deprecated_calls(path, tree, False, findings)
        return findings
    if posix(path).endswith(DEPRECATED_DEFINITION_FILE):
        return []
    findings = []
    for node in ast.walk(tree):
        name = None
        if isinstance(node, ast.Name) and node.id in DEPRECATED_NAMES:
            name = node.id
        elif isinstance(node, ast.Attribute) and node.attr in DEPRECATED_NAMES:
            name = node.attr
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                if alias.name in DEPRECATED_NAMES:
                    name = alias.name
        if name is not None:
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "L5",
                    f"in-tree use of deprecated {name}; call "
                    "Database.sql() instead",
                )
            )
    return findings


# -- L6 ------------------------------------------------------------------------


def check_explicit_dtype(path: Path, tree: ast.AST) -> list[Finding]:
    if "exec/operators" not in posix(path):
        return []
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in NDARRAY_CONSTRUCTORS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in ("np", "numpy")
        ):
            continue
        has_dtype = any(kw.arg == "dtype" for kw in node.keywords)
        # np.zeros(shape, dtype) / np.full(shape, fill, dtype) also
        # accept dtype positionally.
        positional_slot = {"empty": 2, "zeros": 2, "ndarray": 2, "full": 3}
        has_dtype = has_dtype or len(node.args) >= positional_slot[
            node.func.attr
        ]
        if not has_dtype:
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "L6",
                    f"np.{node.func.attr}() without an explicit dtype "
                    "defaults to float64 and hides column-type errors",
                )
            )
    return findings


# -- L7 ------------------------------------------------------------------------


def check_stale_markers(path: Path) -> list[Finding]:
    findings: list[Finding] = []
    with tokenize.open(path) as handle:
        for token in tokenize.generate_tokens(handle.readline):
            if token.type != tokenize.COMMENT:
                continue
            if any(word in token.string for word in MARKER_WORDS):
                findings.append(
                    Finding(
                        path,
                        token.start[0],
                        "L7",
                        "stale work marker in source; track it in "
                        "ROADMAP.md 'Open items' instead",
                    )
                )
    return findings


# -- L8 ------------------------------------------------------------------------


def check_raw_segment_decode(path: Path, tree: ast.AST) -> list[Finding]:
    if posix(path).endswith(FROMBUFFER_ALLOWED_FILES):
        return []
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "frombuffer"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in ("np", "numpy")
        ):
            findings.append(
                Finding(
                    path,
                    node.lineno,
                    "L8",
                    "np.frombuffer outside the storage codec layer; "
                    "decode segment payloads through SegmentReader / "
                    "the block cache instead",
                )
            )
    return findings


# -- L9 ------------------------------------------------------------------------

#: Directory whose coroutines must not block the event loop (L9).
ASYNC_CHECKED_DIR = "serve"


def _blocking_call_name(node: ast.Call) -> str | None:
    """Dotted name of a blocking call, or None when the call is safe."""
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "open"
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        owner = func.value.id
        if owner == "time" and func.attr == "sleep":
            return "time.sleep"
        if owner == "socket":
            return f"socket.{func.attr}"
        if owner == "os" and func.attr == "fsync":
            return "os.fsync"
    return None


def _flag_blocking_calls(
    path: Path, body: list[ast.stmt], findings: list[Finding]
) -> None:
    """Flag blocking calls in a coroutine body, skipping nested defs.

    Nested function definitions (sync or async, and lambdas) are
    skipped: a sync helper only blocks whatever thread eventually calls
    it, and nested ``async def``\\ s are visited as coroutines of their
    own by the caller's walk.
    """
    stack: list[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        if isinstance(node, ast.Call):
            name = _blocking_call_name(node)
            if name is not None:
                findings.append(
                    Finding(
                        path,
                        node.lineno,
                        "L9",
                        f"blocking call {name}() inside a repro.serve "
                        "coroutine stalls the event loop; move it to "
                        "run_in_executor",
                    )
                )
        stack.extend(ast.iter_child_nodes(node))


def check_async_blocking_io(path: Path, tree: ast.AST) -> list[Finding]:
    if ASYNC_CHECKED_DIR not in path.parts:
        return []
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.AsyncFunctionDef):
            _flag_blocking_calls(path, node.body, findings)
    return findings


# -- L10 -----------------------------------------------------------------------

#: Patch-set methods that change membership (L10).  ``remap_after_delete``
#: is included even though it only renumbers: a renumber outside the
#: delta layer is just as invisible to WAL replay as an add/remove.
PATCH_MUTATION_METHODS = frozenset(
    {"extend", "add", "remove", "remap_after_delete"}
)


def check_patch_mutation_layer(path: Path, tree: ast.AST) -> list[Finding]:
    if posix(path).endswith(DELTA_LAYER_FILES):
        return []
    findings: list[Finding] = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in PATCH_MUTATION_METHODS
        ):
            continue
        # Receiver heuristic: the project's patch-set handles are named
        # ``...patches...`` ("patches", "self.patches", "partition.patches",
        # "table_patches") — plain containers are not, so list.extend and
        # set.add elsewhere stay legal.
        receiver = ast.unparse(node.func.value).lower()
        if "patches" not in receiver:
            continue
        findings.append(
            Finding(
                path,
                node.lineno,
                "L10",
                f"direct patch-set mutation .{node.func.attr}() on "
                f"{ast.unparse(node.func.value)!r}; route membership "
                "changes through repro.core.delta.apply_ops so they "
                "produce a replayable PatchDelta",
            )
        )
    return findings


# -- driver --------------------------------------------------------------------


def lint_file(path: Path) -> list[Finding]:
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    is_test = is_test_file(path)
    findings: list[Finding] = []
    findings.extend(check_deprecated_api(path, tree, is_test))
    if is_test:
        return findings
    findings.extend(check_bare_asserts(path, tree))
    findings.extend(check_lock_discipline(path, tree))
    findings.extend(check_fsync_discipline(path, tree, source.splitlines()))
    findings.extend(check_metric_namespaces(path, tree))
    findings.extend(check_explicit_dtype(path, tree))
    findings.extend(check_raw_segment_decode(path, tree))
    findings.extend(check_async_blocking_io(path, tree))
    findings.extend(check_patch_mutation_layer(path, tree))
    findings.extend(check_stale_markers(path))
    return findings


#: Every rule this driver can emit (L11-L13 come from tools/lockgraph.py).
ALL_RULES = tuple(f"L{n}" for n in range(1, 14))

#: The lock-graph rules delegated to the whole-source analyzer.
LOCKGRAPH_RULES = ("L11", "L12", "L13")


def _parse_select(raw: str | None) -> frozenset[str]:
    """``--select L2,L11`` -> rule set; None/empty selects everything."""
    if not raw:
        return frozenset(ALL_RULES)
    selected = frozenset(
        token.strip().upper() for token in raw.split(",") if token.strip()
    )
    unknown = selected - frozenset(ALL_RULES)
    if unknown:
        raise SystemExit(
            f"repro_lint: unknown rule(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(ALL_RULES)}"
        )
    return selected


def _lockgraph_findings(roots: list[str]) -> list[Finding]:
    """Run the lock-graph analyzer (L11-L13) over the source roots."""
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    try:
        import lockgraph
    finally:
        sys.path.pop(0)
    return [
        Finding(found.path, found.line, found.rule, found.message)
        for found in lockgraph.analyze(lockgraph.iter_python_files(roots))
    ]


def _emit(findings: list[Finding], fmt: str) -> None:
    if fmt == "json":
        print(
            json.dumps(
                [
                    {
                        "path": posix(f.path),
                        "line": f.line,
                        "rule": f.rule,
                        "message": f.message,
                    }
                    for f in findings
                ],
                indent=2,
            )
        )
        return
    for finding in findings:
        if fmt == "github":
            # One workflow annotation per finding; messages must be
            # newline-free for the ::error command syntax.
            message = finding.message.replace("\n", " ")
            print(
                f"::error file={posix(finding.path)},"
                f"line={finding.line},title={finding.rule}::{message}"
            )
        else:
            print(finding.render())


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro_lint",
        description="Repo-specific invariant lint (rules L1-L13).",
    )
    parser.add_argument(
        "roots",
        nargs="*",
        default=["src", "tests"],
        help="directories or single .py files (default: src tests)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule subset, e.g. --select L2,L11",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        choices=("text", "json", "github"),
        default="text",
        help="output format (github emits ::error workflow annotations)",
    )
    options = parser.parse_args(argv)
    selected = _parse_select(options.select)

    findings: list[Finding] = []
    checked = 0
    for path in iter_python_files(options.roots):
        checked += 1
        findings.extend(lint_file(path))
    if selected & frozenset(LOCKGRAPH_RULES):
        findings.extend(_lockgraph_findings(options.roots))
    findings = [f for f in findings if f.rule in selected]
    findings.sort(key=lambda f: (str(f.path), f.line, f.rule))
    _emit(findings, options.fmt)
    status = "clean" if not findings else f"{len(findings)} finding(s)"
    print(f"repro_lint: {checked} files checked, {status}", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
